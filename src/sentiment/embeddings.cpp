#include "sentiment/embeddings.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/rng.h"

namespace osrs {
namespace {

/// Sparse symmetric matrix in adjacency form: rows of (column, value).
using SparseRows = std::vector<std::vector<std::pair<int, double>>>;

/// y = A x for symmetric sparse A stored with both triangle entries.
void Multiply(const SparseRows& a, const std::vector<double>& x,
              std::vector<double>& y) {
  std::fill(y.begin(), y.end(), 0.0);
  for (size_t i = 0; i < a.size(); ++i) {
    double sum = 0.0;
    for (const auto& [j, v] : a[i]) sum += v * x[static_cast<size_t>(j)];
    y[i] = sum;
  }
}

/// Modified Gram-Schmidt orthonormalization of the columns of `basis`
/// (each an n-vector). Columns that collapse numerically are re-seeded.
void Orthonormalize(std::vector<std::vector<double>>& basis, Rng& rng) {
  for (size_t c = 0; c < basis.size(); ++c) {
    for (size_t prev = 0; prev < c; ++prev) {
      double proj = Dot(basis[c], basis[prev]);
      for (size_t i = 0; i < basis[c].size(); ++i) {
        basis[c][i] -= proj * basis[prev][i];
      }
    }
    double norm = Norm2(basis[c]);
    if (norm < 1e-12) {
      for (double& v : basis[c]) v = rng.NextGaussian();
      norm = Norm2(basis[c]);
    }
    for (double& v : basis[c]) v /= norm;
  }
}

}  // namespace

CooccurrenceEmbeddings CooccurrenceEmbeddings::Train(
    const std::vector<std::vector<std::string>>& sentences,
    const EmbeddingOptions& options) {
  OSRS_CHECK_GT(options.dimensions, 0);
  OSRS_CHECK_GT(options.window, 0);
  CooccurrenceEmbeddings emb;
  emb.dimensions_ = options.dimensions;

  // Count words and document frequencies.
  for (const auto& sentence : sentences) {
    emb.vocabulary_.AddDocument(sentence);
  }

  // Restrict to the top max_vocab words.
  std::vector<int> kept = emb.vocabulary_.MostFrequent(
      static_cast<size_t>(options.max_vocab));
  const int v = static_cast<int>(kept.size());
  emb.embedding_row_.assign(emb.vocabulary_.size(), -1);
  for (int row = 0; row < v; ++row) {
    emb.embedding_row_[static_cast<size_t>(kept[static_cast<size_t>(row)])] =
        row;
  }

  if (v == 0) return emb;

  // Windowed co-occurrence counts over kept words.
  std::vector<std::unordered_map<int, double>> counts(
      static_cast<size_t>(v));
  std::vector<double> row_totals(static_cast<size_t>(v), 0.0);
  double grand_total = 0.0;
  for (const auto& sentence : sentences) {
    std::vector<int> rows;
    rows.reserve(sentence.size());
    for (const std::string& word : sentence) {
      int id = emb.vocabulary_.IdOf(word);
      rows.push_back(id == kUnknownWord
                         ? -1
                         : emb.embedding_row_[static_cast<size_t>(id)]);
    }
    for (size_t i = 0; i < rows.size(); ++i) {
      if (rows[i] < 0) continue;
      size_t end = std::min(rows.size(),
                            i + static_cast<size_t>(options.window) + 1);
      for (size_t j = i + 1; j < end; ++j) {
        if (rows[j] < 0) continue;
        double weight = 1.0 / static_cast<double>(j - i);  // distance decay
        counts[static_cast<size_t>(rows[i])][rows[j]] += weight;
        counts[static_cast<size_t>(rows[j])][rows[i]] += weight;
        row_totals[static_cast<size_t>(rows[i])] += weight;
        row_totals[static_cast<size_t>(rows[j])] += weight;
        grand_total += 2.0 * weight;
      }
    }
  }

  // Positive PMI transform.
  SparseRows ppmi(static_cast<size_t>(v));
  for (int i = 0; i < v; ++i) {
    for (const auto& [j, count] : counts[static_cast<size_t>(i)]) {
      double pij = count / std::max(grand_total, 1.0);
      double pi = row_totals[static_cast<size_t>(i)] /
                  std::max(grand_total, 1.0);
      double pj = row_totals[static_cast<size_t>(j)] /
                  std::max(grand_total, 1.0);
      if (pi <= 0.0 || pj <= 0.0 || pij <= 0.0) continue;
      double pmi = std::log(pij / (pi * pj));
      if (pmi > 0.0) ppmi[static_cast<size_t>(i)].emplace_back(j, pmi);
    }
  }

  // Randomized truncated eigendecomposition of the (symmetric) PPMI matrix:
  // subspace iteration on a random start, then scale the orthonormal basis
  // rows by sqrt(|eigenvalue|) to get word vectors, as in SVD-of-PPMI
  // embedding practice.
  const int d = std::min(options.dimensions, v);
  Rng rng(options.seed);
  std::vector<std::vector<double>> basis(
      static_cast<size_t>(d), std::vector<double>(static_cast<size_t>(v)));
  for (auto& column : basis) {
    for (double& value : column) value = rng.NextGaussian();
  }
  Orthonormalize(basis, rng);
  std::vector<double> scratch(static_cast<size_t>(v));
  for (int iter = 0; iter < options.power_iterations; ++iter) {
    for (auto& column : basis) {
      Multiply(ppmi, column, scratch);
      column.swap(scratch);
    }
    Orthonormalize(basis, rng);
  }
  // Rayleigh quotients approximate the top eigenvalues.
  std::vector<double> scale(static_cast<size_t>(d), 0.0);
  for (int c = 0; c < d; ++c) {
    Multiply(ppmi, basis[static_cast<size_t>(c)], scratch);
    double lambda = Dot(basis[static_cast<size_t>(c)], scratch);
    scale[static_cast<size_t>(c)] = std::sqrt(std::abs(lambda));
  }

  emb.vectors_.assign(static_cast<size_t>(v),
                      std::vector<double>(static_cast<size_t>(
                          options.dimensions)));
  emb.idf_.assign(static_cast<size_t>(v), 0.0);
  for (int row = 0; row < v; ++row) {
    for (int c = 0; c < d; ++c) {
      emb.vectors_[static_cast<size_t>(row)][static_cast<size_t>(c)] =
          basis[static_cast<size_t>(c)][static_cast<size_t>(row)] *
          scale[static_cast<size_t>(c)];
    }
    emb.idf_[static_cast<size_t>(row)] =
        emb.vocabulary_.Idf(kept[static_cast<size_t>(row)]);
  }
  return emb;
}

bool CooccurrenceEmbeddings::Contains(std::string_view word) const {
  int id = vocabulary_.IdOf(word);
  return id != kUnknownWord &&
         embedding_row_[static_cast<size_t>(id)] >= 0;
}

std::vector<double> CooccurrenceEmbeddings::VectorOf(
    std::string_view word) const {
  int id = vocabulary_.IdOf(word);
  if (id == kUnknownWord) {
    return std::vector<double>(static_cast<size_t>(dimensions_), 0.0);
  }
  int row = embedding_row_[static_cast<size_t>(id)];
  if (row < 0) {
    return std::vector<double>(static_cast<size_t>(dimensions_), 0.0);
  }
  return vectors_[static_cast<size_t>(row)];
}

std::vector<double> CooccurrenceEmbeddings::SentenceVector(
    const std::vector<std::string>& tokens) const {
  std::vector<double> out(static_cast<size_t>(dimensions_), 0.0);
  double weight_total = 0.0;
  for (const std::string& token : tokens) {
    int id = vocabulary_.IdOf(token);
    if (id == kUnknownWord) continue;
    int row = embedding_row_[static_cast<size_t>(id)];
    if (row < 0) continue;
    double weight = idf_[static_cast<size_t>(row)];
    const auto& vec = vectors_[static_cast<size_t>(row)];
    for (size_t c = 0; c < out.size(); ++c) out[c] += weight * vec[c];
    weight_total += weight;
  }
  if (weight_total > 0.0) {
    for (double& value : out) value /= weight_total;
    double norm = Norm2(out);
    if (norm > 1e-12) {
      for (double& value : out) value /= norm;
    }
  }
  return out;
}

}  // namespace osrs
