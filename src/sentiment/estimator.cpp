#include "sentiment/estimator.h"

#include <utility>

#include "common/math_util.h"
#include "common/strings.h"
#include "fault/failpoint.h"

namespace osrs {

Result<SentimentEstimator> SentimentEstimator::Train(
    const std::vector<std::vector<std::string>>& sentences,
    const std::vector<double>& ratings,
    const SentimentEstimatorOptions& options) {
  if (sentences.size() != ratings.size() || sentences.empty()) {
    return Status::InvalidArgument(
        StrFormat("need matching non-empty sentences (%zu) / ratings (%zu)",
                  sentences.size(), ratings.size()));
  }
  if (options.lexicon_weight < 0.0 || options.lexicon_weight > 1.0) {
    return Status::InvalidArgument("lexicon_weight must be in [0, 1]");
  }

  SentimentEstimator estimator;
  estimator.lexicon_weight_ = options.lexicon_weight;
  auto embeddings = std::make_shared<CooccurrenceEmbeddings>(
      CooccurrenceEmbeddings::Train(sentences, options.embedding));

  std::vector<std::vector<double>> features;
  features.reserve(sentences.size());
  for (const auto& tokens : sentences) {
    features.push_back(embeddings->SentenceVector(tokens));
  }
  auto regression =
      RidgeRegression::Fit(features, ratings, options.ridge_lambda);
  OSRS_RETURN_IF_ERROR(regression.status());

  estimator.embeddings_ = std::move(embeddings);
  estimator.regression_ =
      std::make_shared<RidgeRegression>(std::move(regression).value());
  return estimator;
}

SentimentEstimator SentimentEstimator::LexiconOnly() {
  SentimentEstimator estimator;
  estimator.lexicon_weight_ = 1.0;
  return estimator;
}

Result<double> SentimentEstimator::TryScoreSentence(
    const std::vector<std::string>& tokens) const {
  OSRS_RETURN_IF_ERROR(OSRS_FAILPOINT("osrs.sentiment.score"));
  return ScoreSentence(tokens);
}

double SentimentEstimator::ScoreSentence(
    const std::vector<std::string>& tokens) const {
  double lexicon = SentimentLexicon::Default().ScoreSentence(tokens);
  if (regression_ == nullptr || lexicon_weight_ >= 1.0) {
    return Clamp(lexicon, -1.0, 1.0);
  }
  double regression =
      regression_->Predict(embeddings_->SentenceVector(tokens));
  return Clamp(lexicon_weight_ * lexicon +
                   (1.0 - lexicon_weight_) * regression,
               -1.0, 1.0);
}

}  // namespace osrs
