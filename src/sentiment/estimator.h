#ifndef OSRS_SENTIMENT_ESTIMATOR_H_
#define OSRS_SENTIMENT_ESTIMATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sentiment/embeddings.h"
#include "sentiment/lexicon.h"
#include "sentiment/regression.h"

namespace osrs {

/// Configuration of the combined sentence-sentiment estimator.
struct SentimentEstimatorOptions {
  EmbeddingOptions embedding;
  /// Ridge penalty of the regression head.
  double ridge_lambda = 1.0;
  /// Blend between the lexicon path (1.0) and the regression path (0.0).
  double lexicon_weight = 0.5;
};

/// Sentence → sentiment in [-1, 1], following §5.1: sentences are embedded
/// into fixed-size vectors (doc2vec in the paper, PPMI-SVD here) and a
/// regression trained on review star ratings predicts the sentiment; the
/// graded opinion lexicon is blended in as the unsupervised prior. Either
/// path can be disabled via `lexicon_weight` (0 = regression only,
/// 1 = lexicon only).
class SentimentEstimator {
 public:
  /// Trains the regression head on tokenized sentences labeled with their
  /// review's normalized star rating in [-1, 1] (weak supervision — the
  /// rating is free, no annotation needed).
  static Result<SentimentEstimator> Train(
      const std::vector<std::vector<std::string>>& sentences,
      const std::vector<double>& ratings,
      const SentimentEstimatorOptions& options);

  /// A lexicon-only estimator (no training corpus required).
  static SentimentEstimator LexiconOnly();

  /// Sentiment of a tokenized sentence, clamped to [-1, 1].
  double ScoreSentence(const std::vector<std::string>& tokens) const;

  /// ScoreSentence behind the "osrs.sentiment.score" failpoint — the
  /// variant serve-time annotation calls so the chaos suite can fail or
  /// stall scoring like any other phase a live request crosses. Scoring
  /// itself cannot fail, so the only non-OK outcomes are injected ones.
  Result<double> TryScoreSentence(
      const std::vector<std::string>& tokens) const;

  bool has_regression() const { return regression_ != nullptr; }

 private:
  SentimentEstimator() = default;

  double lexicon_weight_ = 1.0;
  std::shared_ptr<const CooccurrenceEmbeddings> embeddings_;
  std::shared_ptr<const RidgeRegression> regression_;
};

}  // namespace osrs

#endif  // OSRS_SENTIMENT_ESTIMATOR_H_
