#ifndef OSRS_SENTIMENT_LEXICON_H_
#define OSRS_SENTIMENT_LEXICON_H_

#include <string>
#include <string_view>
#include <vector>

namespace osrs {

/// Rule-based opinion lexicon with graded strengths, negation and intensity
/// handling — the unsupervised sentiment path (§6 "lexicon-based methods",
/// Taboada et al.). Strengths are in [-1, 1]; "good" ≈ 0.5, "excellent" ≈
/// 0.95, "awful" ≈ -0.9, matching the paper's premise that sentiment is a
/// linear scale rather than a boolean.
class SentimentLexicon {
 public:
  /// The built-in general-domain lexicon (shared, immutable).
  static const SentimentLexicon& Default();

  /// Signed strength of an opinion word; 0.0 when not an opinion word.
  double OpinionStrength(std::string_view word) const;

  bool IsOpinionWord(std::string_view word) const {
    return OpinionStrength(word) != 0.0;
  }

  /// Multiplier of an intensity modifier ("very" -> 1.5, "slightly" ->
  /// 0.5); 1.0 when the word is not a modifier.
  double ModifierFactor(std::string_view word) const;

  /// True for negation words ("not", "never", "no", "n't", ...).
  bool IsNegator(std::string_view word) const;

  /// Sentence score in [-1, 1]: each opinion word contributes its strength,
  /// scaled by intensity modifiers and flipped (damped by 0.8) by negators
  /// in the three preceding tokens; contributions are averaged and clamped.
  /// Returns 0 for sentences with no opinion words.
  double ScoreSentence(const std::vector<std::string>& tokens) const;

  /// Every opinion word with its strength (for Double Propagation seeds).
  std::vector<std::pair<std::string, double>> AllOpinionWords() const;

  /// A positive (negative) opinion word whose strength is closest to
  /// `target`; lets the corpus generator realize a numeric sentiment as
  /// text. Never returns an empty string.
  const std::string& WordForStrength(double target) const;

  /// Like WordForStrength but restricted to predicative adjectives, so
  /// generated sentences stay grammatical ("the screen is {word}").
  const std::string& AdjectiveForStrength(double target) const;

  /// Internal lookup tables; public only so the .cpp builder can define it.
  struct Tables;

 private:
  SentimentLexicon();

  const Tables* tables_;
};

}  // namespace osrs

#endif  // OSRS_SENTIMENT_LEXICON_H_
