#ifndef OSRS_LP_MIP_H_
#define OSRS_LP_MIP_H_

#include <cstdint>
#include <vector>

#include "lp/lp_problem.h"
#include "lp/simplex.h"

namespace osrs {

/// Tuning knobs of the branch-and-bound solver.
struct MipOptions {
  SimplexOptions lp;
  /// Maximum branch-and-bound nodes (LP solves) before giving up and
  /// returning the incumbent.
  int64_t max_nodes = 20'000;
  /// A variable counts as integral within this tolerance.
  double integrality_tol = 1e-6;
  /// Set when every integer-feasible solution has an integral objective
  /// (true for the k-median instances: unit edge distances); enables
  /// stronger "lp > incumbent - 1" pruning.
  bool objective_is_integral = false;
};

/// Outcome of a MIP solve.
struct MipSolution {
  /// kOptimal: incumbent proven optimal. kIterationLimit: node/iteration
  /// budget exhausted, incumbent (if any) returned. kInterrupted: an
  /// ExecutionBudget fired mid-search, incumbent (if any) returned.
  /// kError: an LP sub-solve failed environmentally (see `error`).
  /// kInfeasible/kUnbounded as usual.
  LpStatus status = LpStatus::kIterationLimit;
  bool has_incumbent = false;
  double objective = 0.0;
  std::vector<double> values;
  /// Branch-and-bound nodes expanded (= LP relaxations solved).
  int64_t nodes = 0;
  /// Total simplex iterations across all nodes.
  int64_t lp_iterations = 0;
  /// The failure behind LpStatus::kError; OK otherwise.
  Status error = Status::OK();
};

/// Depth-first branch-and-bound over the integer-flagged variables of an
/// LpProblem, with the bundled RevisedSimplex as relaxation solver.
///
/// Together with RevisedSimplex this forms the repository's stand-in for
/// the Gurobi MIP solver of §4.2: it solves the k-median ILPs exactly
/// (k-median relaxations are frequently integral, so the tree is small).
class MipSolver {
 public:
  explicit MipSolver(MipOptions options = {});

  /// Solves min c^T x with the integrality constraints. `problem` is taken
  /// by value: branching mutates variable bounds internally. A non-null
  /// `budget` is checked at every node (its work unit is nodes expanded)
  /// and inside each LP sub-solve (deadline/cancellation only); when it
  /// fires the search stops with kInterrupted, keeping any incumbent.
  MipSolution Solve(LpProblem problem, const ExecutionBudget* budget = nullptr);

 private:
  MipOptions options_;
};

}  // namespace osrs

#endif  // OSRS_LP_MIP_H_
