#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace osrs {
namespace {

obs::Counter* PivotsCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("osrs.simplex.pivots");
  return counter;
}

}  // namespace

const char* LpStatusToString(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "Optimal";
    case LpStatus::kInfeasible:
      return "Infeasible";
    case LpStatus::kUnbounded:
      return "Unbounded";
    case LpStatus::kIterationLimit:
      return "IterationLimit";
    case LpStatus::kInterrupted:
      return "Interrupted";
    case LpStatus::kError:
      return "Error";
  }
  return "Unknown";
}

namespace {

enum class VarState : uint8_t { kBasic, kAtLower, kAtUpper, kFree };

/// One elementary (eta) transformation of the basis inverse: the basis
/// column at `pivot_row` was replaced by the FTRANed entering column `d`.
struct Eta {
  int pivot_row;
  double pivot_value;                       // d[pivot_row]
  std::vector<std::pair<int, double>> off;  // d[i] for i != pivot_row
};

/// Internal simplex workspace over the standardized problem
/// (structural variables + slacks + artificials; all rows equalities).
class SimplexEngine {
 public:
  SimplexEngine(const LpProblem& problem, const SimplexOptions& options,
                const ExecutionBudget* budget)
      : options_(options),
        budget_(budget),
        num_structural_(problem.num_variables()) {
    BuildStandardForm(problem);
  }

  LpSolution Run(const LpProblem& problem) {
    LpSolution solution;
    InstallInitialBasis();

    if (has_artificials_) {
      // Phase 1: minimize the total artificial infeasibility.
      phase_one_ = true;
      LpStatus status = Optimize(&solution.iterations);
      if (status != LpStatus::kOptimal) {
        // Phase-1 LPs are bounded below by 0, so non-optimal means the
        // iteration limit was hit — or the caller's budget ran out, or a
        // failpoint injected an error.
        solution.status = (status == LpStatus::kInterrupted ||
                           status == LpStatus::kError)
                              ? status
                              : LpStatus::kIterationLimit;
        solution.error = injected_error_;
        return solution;
      }
      double infeasibility = CurrentObjective();
      if (infeasibility > 1e-6) {
        solution.status = LpStatus::kInfeasible;
        return solution;
      }
      // Fix artificials at zero and switch to the real objective.
      for (int j = first_artificial_; j < NumColumns(); ++j) {
        lower_[static_cast<size_t>(j)] = 0.0;
        upper_[static_cast<size_t>(j)] = 0.0;
        if (state_[static_cast<size_t>(j)] != VarState::kBasic) {
          state_[static_cast<size_t>(j)] = VarState::kAtLower;
        }
      }
      phase_one_ = false;
      ResyncBasicValues();
    }

    LpStatus status = Optimize(&solution.iterations);
    solution.status = status;
    if (status != LpStatus::kOptimal && status != LpStatus::kIterationLimit) {
      solution.error = injected_error_;
      return solution;
    }
    // (kInterrupted returns above: a budget-aborted basis can be anywhere,
    // so no point values are extracted for it.)

    // Extract structural values.
    solution.values.assign(static_cast<size_t>(num_structural_), 0.0);
    std::vector<double> full(static_cast<size_t>(NumColumns()));
    for (int j = 0; j < NumColumns(); ++j) {
      full[static_cast<size_t>(j)] = NonbasicValue(j);
    }
    for (int i = 0; i < num_rows_; ++i) {
      full[static_cast<size_t>(basis_[static_cast<size_t>(i)])] =
          basic_value_[static_cast<size_t>(i)];
    }
    for (int j = 0; j < num_structural_; ++j) {
      solution.values[static_cast<size_t>(j)] = full[static_cast<size_t>(j)];
    }
    solution.objective = problem.EvaluateObjective(solution.values);
    return solution;
  }

 private:
  int NumColumns() const { return static_cast<int>(cols_.size()); }

  void BuildStandardForm(const LpProblem& problem) {
    num_rows_ = problem.num_constraints();
    rhs_.resize(static_cast<size_t>(num_rows_));

    // Structural columns.
    cols_.assign(static_cast<size_t>(num_structural_), {});
    for (int j = 0; j < num_structural_; ++j) {
      lower_.push_back(problem.lower(j));
      upper_.push_back(problem.upper(j));
      cost_.push_back(problem.objective(j));
    }
    for (int i = 0; i < num_rows_; ++i) {
      rhs_[static_cast<size_t>(i)] = problem.rhs(i);
      for (const auto& [var, coeff] : problem.row_terms(i)) {
        cols_[static_cast<size_t>(var)].emplace_back(i, coeff);
      }
    }

    // Slack columns for inequality rows: Ax + s = b with s >= 0 (for <=)
    // or s <= 0 (for >=).
    slack_of_row_.assign(static_cast<size_t>(num_rows_), -1);
    for (int i = 0; i < num_rows_; ++i) {
      ConstraintSense sense = problem.sense(i);
      if (sense == ConstraintSense::kEqual) continue;
      int j = NumColumns();
      cols_.push_back({{i, 1.0}});
      cost_.push_back(0.0);
      if (sense == ConstraintSense::kLessEqual) {
        lower_.push_back(0.0);
        upper_.push_back(kLpInfinity);
      } else {
        lower_.push_back(-kLpInfinity);
        upper_.push_back(0.0);
      }
      slack_of_row_[static_cast<size_t>(i)] = j;
    }
    first_artificial_ = NumColumns();
  }

  double NonbasicValue(int j) const {
    switch (state_[static_cast<size_t>(j)]) {
      case VarState::kAtLower:
        return lower_[static_cast<size_t>(j)];
      case VarState::kAtUpper:
        return upper_[static_cast<size_t>(j)];
      case VarState::kFree:
        return 0.0;
      case VarState::kBasic:
        return 0.0;  // caller overwrites basic entries
    }
    return 0.0;
  }

  /// Picks the initial state of every column, installs slacks or fresh
  /// artificials as the starting (diagonal) basis, and sets basic values.
  void InstallInitialBasis() {
    state_.assign(cols_.size(), VarState::kAtLower);
    for (int j = 0; j < NumColumns(); ++j) {
      if (std::isfinite(lower_[static_cast<size_t>(j)])) {
        state_[static_cast<size_t>(j)] = VarState::kAtLower;
      } else if (std::isfinite(upper_[static_cast<size_t>(j)])) {
        state_[static_cast<size_t>(j)] = VarState::kAtUpper;
      } else {
        state_[static_cast<size_t>(j)] = VarState::kFree;
      }
    }

    // Row residuals with every column nonbasic at its resting value.
    std::vector<double> residual(rhs_);
    for (int j = 0; j < NumColumns(); ++j) {
      double v = NonbasicValue(j);
      if (v == 0.0) continue;
      for (const auto& [row, coeff] : cols_[static_cast<size_t>(j)]) {
        residual[static_cast<size_t>(row)] -= coeff * v;
      }
    }

    basis_.assign(static_cast<size_t>(num_rows_), -1);
    basic_value_.assign(static_cast<size_t>(num_rows_), 0.0);
    basis_diag_.assign(static_cast<size_t>(num_rows_), 1.0);
    has_artificials_ = false;

    for (int i = 0; i < num_rows_; ++i) {
      int slack = slack_of_row_[static_cast<size_t>(i)];
      if (slack >= 0) {
        // Absorb the residual into the slack if its bounds allow.
        double value = NonbasicValue(slack) + residual[static_cast<size_t>(i)];
        if (value >= lower_[static_cast<size_t>(slack)] - 1e-12 &&
            value <= upper_[static_cast<size_t>(slack)] + 1e-12) {
          basis_[static_cast<size_t>(i)] = slack;
          basic_value_[static_cast<size_t>(i)] = value;
          state_[static_cast<size_t>(slack)] = VarState::kBasic;
          // The slack's resting value was already folded into residual; the
          // basic value computed above restores row feasibility exactly.
          continue;
        }
      }
      // Artificial with coefficient sign(residual) so its value is >= 0.
      double r = residual[static_cast<size_t>(i)];
      double sign = r >= 0.0 ? 1.0 : -1.0;
      int j = NumColumns();
      cols_.push_back({{i, sign}});
      cost_.push_back(0.0);
      lower_.push_back(0.0);
      upper_.push_back(kLpInfinity);
      state_.push_back(VarState::kBasic);
      basis_[static_cast<size_t>(i)] = j;
      basic_value_[static_cast<size_t>(i)] = std::abs(r);
      basis_diag_[static_cast<size_t>(i)] = sign;
      has_artificials_ = true;
    }
    etas_.clear();
  }

  double ColumnCost(int j) const {
    if (phase_one_) return j >= first_artificial_ ? 1.0 : 0.0;
    return j < static_cast<int>(cost_.size()) ? cost_[static_cast<size_t>(j)]
                                              : 0.0;
  }

  double CurrentObjective() const {
    double total = 0.0;
    for (int j = 0; j < NumColumns(); ++j) {
      if (state_[static_cast<size_t>(j)] == VarState::kBasic) continue;
      total += ColumnCost(j) * NonbasicValue(j);
    }
    for (int i = 0; i < num_rows_; ++i) {
      total += ColumnCost(basis_[static_cast<size_t>(i)]) *
               basic_value_[static_cast<size_t>(i)];
    }
    return total;
  }

  /// v <- B^{-1} v (apply the diagonal initial inverse, then each eta).
  void Ftran(std::vector<double>& v) const {
    for (int i = 0; i < num_rows_; ++i) {
      v[static_cast<size_t>(i)] *= basis_diag_[static_cast<size_t>(i)];
    }
    for (const Eta& eta : etas_) {
      double vr = v[static_cast<size_t>(eta.pivot_row)];
      if (vr == 0.0) continue;
      vr /= eta.pivot_value;
      v[static_cast<size_t>(eta.pivot_row)] = vr;
      for (const auto& [row, value] : eta.off) {
        v[static_cast<size_t>(row)] -= value * vr;
      }
    }
  }

  /// u^T <- u^T B^{-1} (apply eta transposes in reverse, then the diagonal).
  void Btran(std::vector<double>& u) const {
    for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
      double acc = u[static_cast<size_t>(it->pivot_row)];
      for (const auto& [row, value] : it->off) {
        acc -= value * u[static_cast<size_t>(row)];
      }
      u[static_cast<size_t>(it->pivot_row)] = acc / it->pivot_value;
    }
    for (int i = 0; i < num_rows_; ++i) {
      u[static_cast<size_t>(i)] *= basis_diag_[static_cast<size_t>(i)];
    }
  }

  /// Recomputes basic values as B^{-1}(b - N x_N); heals incremental drift.
  void ResyncBasicValues() {
    std::vector<double> r(rhs_);
    for (int j = 0; j < NumColumns(); ++j) {
      if (state_[static_cast<size_t>(j)] == VarState::kBasic) continue;
      double v = NonbasicValue(j);
      if (v == 0.0) continue;
      for (const auto& [row, coeff] : cols_[static_cast<size_t>(j)]) {
        r[static_cast<size_t>(row)] -= coeff * v;
      }
    }
    Ftran(r);
    basic_value_ = std::move(r);
  }

  LpStatus Optimize(int64_t* iteration_counter) {
    int degenerate_streak = 0;
    std::vector<double> pi(static_cast<size_t>(num_rows_));
    std::vector<double> direction(static_cast<size_t>(num_rows_));

    // Budget poll period: rare enough that Clock::now() is invisible next
    // to a pricing pass, frequent enough that deadlines bind within a few
    // iterations even on large instances.
    constexpr int64_t kBudgetCheckPeriod = 8;

    for (int64_t iter = 0; iter < options_.max_iterations; ++iter) {
      if (iter > 0 && iter % options_.resync_period == 0) {
        ResyncBasicValues();
      }
      if (iter % kBudgetCheckPeriod == 0) {
        // The pivot failpoint shares the budget poll cadence: cheap, yet
        // guaranteed to be evaluated at least once per Optimize call.
        Status injected = OSRS_FAILPOINT("osrs.lp.pivot");
        if (!injected.ok()) {
          injected_error_ = std::move(injected);
          return LpStatus::kError;
        }
        if (budget_ != nullptr && !budget_->Check(*iteration_counter).ok()) {
          return LpStatus::kInterrupted;
        }
      }
      ++*iteration_counter;
      const bool bland = degenerate_streak >= options_.bland_trigger;

      // Dual prices: pi^T = c_B^T B^{-1}.
      for (int i = 0; i < num_rows_; ++i) {
        pi[static_cast<size_t>(i)] =
            ColumnCost(basis_[static_cast<size_t>(i)]);
      }
      Btran(pi);

      // Pricing: find the entering column.
      int entering = -1;
      int entering_dir = 0;
      double best_violation = options_.optimality_tol;
      for (int j = 0; j < NumColumns(); ++j) {
        VarState st = state_[static_cast<size_t>(j)];
        if (st == VarState::kBasic) continue;
        if (lower_[static_cast<size_t>(j)] ==
            upper_[static_cast<size_t>(j)]) {
          continue;  // fixed (includes retired artificials)
        }
        double rc = ColumnCost(j);
        for (const auto& [row, coeff] : cols_[static_cast<size_t>(j)]) {
          rc -= pi[static_cast<size_t>(row)] * coeff;
        }
        int dir = 0;
        double violation = 0.0;
        if ((st == VarState::kAtLower || st == VarState::kFree) &&
            rc < -options_.optimality_tol) {
          dir = +1;
          violation = -rc;
        } else if ((st == VarState::kAtUpper || st == VarState::kFree) &&
                   rc > options_.optimality_tol) {
          dir = -1;
          violation = rc;
        } else {
          continue;
        }
        if (bland) {
          entering = j;
          entering_dir = dir;
          break;  // smallest index rule
        }
        if (violation > best_violation) {
          best_violation = violation;
          entering = j;
          entering_dir = dir;
        }
      }
      if (entering == -1) return LpStatus::kOptimal;

      // FTRAN the entering column.
      std::fill(direction.begin(), direction.end(), 0.0);
      for (const auto& [row, coeff] : cols_[static_cast<size_t>(entering)]) {
        direction[static_cast<size_t>(row)] = coeff;
      }
      Ftran(direction);

      // Bounded-variable ratio test. The entering variable moves by
      // delta >= 0 in direction `entering_dir`; basic i changes at rate
      // -entering_dir * direction[i].
      double self_limit = kLpInfinity;
      if (std::isfinite(lower_[static_cast<size_t>(entering)]) &&
          std::isfinite(upper_[static_cast<size_t>(entering)])) {
        self_limit = upper_[static_cast<size_t>(entering)] -
                     lower_[static_cast<size_t>(entering)];
      }
      double best_delta = self_limit;
      int leaving_row = -1;
      bool leaving_to_upper = false;
      double leaving_pivot = 0.0;
      for (int i = 0; i < num_rows_; ++i) {
        double d = direction[static_cast<size_t>(i)];
        if (std::abs(d) <= options_.pivot_tol) continue;
        double rate = -static_cast<double>(entering_dir) * d;
        int b = basis_[static_cast<size_t>(i)];
        double delta;
        bool to_upper;
        if (rate > 0.0) {
          double room = upper_[static_cast<size_t>(b)];
          if (!std::isfinite(room)) continue;
          delta = (room - basic_value_[static_cast<size_t>(i)]) / rate;
          to_upper = true;
        } else {
          double room = lower_[static_cast<size_t>(b)];
          if (!std::isfinite(room)) continue;
          delta = (basic_value_[static_cast<size_t>(i)] - room) / (-rate);
          to_upper = false;
        }
        if (delta < 0.0) delta = 0.0;  // tiny infeasibility from drift
        bool take;
        if (delta < best_delta - 1e-10) {
          take = true;
        } else if (delta <= best_delta + 1e-10 && leaving_row >= 0) {
          // Tie: prefer the larger pivot for stability (or the smaller
          // basic index under Bland's rule).
          take = bland ? b < basis_[static_cast<size_t>(leaving_row)]
                       : std::abs(d) > std::abs(leaving_pivot);
        } else {
          take = delta < best_delta;
        }
        if (take) {
          best_delta = delta;
          leaving_row = i;
          leaving_to_upper = to_upper;
          leaving_pivot = d;
        }
      }

      if (!std::isfinite(best_delta)) return LpStatus::kUnbounded;

      if (best_delta > 1e-12) {
        degenerate_streak = 0;
      } else {
        ++degenerate_streak;
      }

      // Apply the step to the basic values.
      if (best_delta != 0.0) {
        for (int i = 0; i < num_rows_; ++i) {
          double d = direction[static_cast<size_t>(i)];
          if (d != 0.0) {
            basic_value_[static_cast<size_t>(i)] -=
                static_cast<double>(entering_dir) * best_delta * d;
          }
        }
      }

      if (leaving_row == -1) {
        // Bound flip: the entering variable crosses to its other bound;
        // the basis is unchanged.
        state_[static_cast<size_t>(entering)] =
            entering_dir > 0 ? VarState::kAtUpper : VarState::kAtLower;
        continue;
      }

      // Pivot: entering becomes basic in leaving_row.
      int leaving_var = basis_[static_cast<size_t>(leaving_row)];
      state_[static_cast<size_t>(leaving_var)] =
          leaving_to_upper ? VarState::kAtUpper : VarState::kAtLower;
      double entering_start =
          state_[static_cast<size_t>(entering)] == VarState::kAtUpper
              ? upper_[static_cast<size_t>(entering)]
              : (state_[static_cast<size_t>(entering)] == VarState::kAtLower
                     ? lower_[static_cast<size_t>(entering)]
                     : 0.0);
      basis_[static_cast<size_t>(leaving_row)] = entering;
      basic_value_[static_cast<size_t>(leaving_row)] =
          entering_start + static_cast<double>(entering_dir) * best_delta;
      state_[static_cast<size_t>(entering)] = VarState::kBasic;

      // Record the eta transformation for this pivot.
      Eta eta;
      eta.pivot_row = leaving_row;
      eta.pivot_value = direction[static_cast<size_t>(leaving_row)];
      for (int i = 0; i < num_rows_; ++i) {
        double d = direction[static_cast<size_t>(i)];
        if (i != leaving_row && d != 0.0) {
          eta.off.emplace_back(i, d);
        }
      }
      etas_.push_back(std::move(eta));
    }
    return LpStatus::kIterationLimit;
  }

  const SimplexOptions options_;
  const ExecutionBudget* const budget_;  // may be null (unbudgeted solve)
  const int num_structural_;
  int num_rows_ = 0;
  int first_artificial_ = 0;
  bool has_artificials_ = false;
  bool phase_one_ = false;
  /// Set when Optimize returns LpStatus::kError (injected failure).
  Status injected_error_ = Status::OK();

  std::vector<std::vector<std::pair<int, double>>> cols_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> cost_;
  std::vector<double> rhs_;
  std::vector<int> slack_of_row_;

  std::vector<VarState> state_;
  std::vector<int> basis_;          // row -> basic column
  std::vector<double> basic_value_; // row -> value of its basic column
  std::vector<double> basis_diag_;  // signs of the initial diagonal basis
  std::vector<Eta> etas_;
};

}  // namespace

RevisedSimplex::RevisedSimplex(SimplexOptions options) : options_(options) {}

LpSolution RevisedSimplex::Solve(const LpProblem& problem,
                                 const ExecutionBudget* budget) {
  if (problem.num_constraints() == 0) {
    // Pure bound minimization: each variable sits at the bound favoring its
    // cost (unbounded if the favorable side is infinite with nonzero cost).
    LpSolution solution;
    solution.values.resize(static_cast<size_t>(problem.num_variables()));
    for (int j = 0; j < problem.num_variables(); ++j) {
      double c = problem.objective(j);
      double v;
      if (c > 0.0) {
        v = problem.lower(j);
      } else if (c < 0.0) {
        v = problem.upper(j);
      } else {
        v = std::isfinite(problem.lower(j)) ? problem.lower(j)
            : std::isfinite(problem.upper(j)) ? problem.upper(j)
                                              : 0.0;
      }
      if (!std::isfinite(v)) {
        solution.status = LpStatus::kUnbounded;
        return solution;
      }
      solution.values[static_cast<size_t>(j)] = v;
    }
    solution.status = LpStatus::kOptimal;
    solution.objective = problem.EvaluateObjective(solution.values);
    return solution;
  }
  SimplexEngine engine(problem, options_, budget);
  LpSolution solution = engine.Run(problem);
  obs::TraceStat(obs::Stat::kSimplexPivots, solution.iterations);
  PivotsCounter()->Add(solution.iterations);
  return solution;
}

}  // namespace osrs
