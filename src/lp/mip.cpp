#include "lp/mip.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace osrs {
namespace {

obs::Counter* NodesCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("osrs.mip.nodes");
  return counter;
}

/// Shared search state threaded through the recursive DFS.
struct SearchState {
  LpProblem* problem;
  RevisedSimplex* simplex;
  const MipOptions* options;
  MipSolution* solution;
  /// Caller budget with its work bound stripped (node accounting happens
  /// here, not in iteration units inside the LP); null when unbudgeted.
  const ExecutionBudget* lp_budget = nullptr;
  /// Caller budget as given, checked per node against `nodes`.
  const ExecutionBudget* budget = nullptr;
  bool budget_exhausted = false;
  bool interrupted = false;
};

/// Index of the integer variable whose LP value is most fractional, or -1
/// when the point is integral on all flagged variables.
int MostFractionalVariable(const LpProblem& problem,
                           const std::vector<double>& x, double tol) {
  int best = -1;
  double best_score = tol;
  for (int j = 0; j < problem.num_variables(); ++j) {
    if (!problem.is_integer(j)) continue;
    double frac = x[static_cast<size_t>(j)] -
                  std::floor(x[static_cast<size_t>(j)]);
    double distance = std::min(frac, 1.0 - frac);
    if (distance > best_score) {
      best_score = distance;
      best = j;
    }
  }
  return best;
}

void Dfs(SearchState& state) {
  if (state.budget_exhausted) return;
  MipSolution& out = *state.solution;
  if (out.nodes >= state.options->max_nodes) {
    state.budget_exhausted = true;
    return;
  }
  if (state.budget != nullptr && !state.budget->Check(out.nodes).ok()) {
    state.budget_exhausted = true;
    state.interrupted = true;
    return;
  }
  ++out.nodes;

  LpSolution lp = state.simplex->Solve(*state.problem, state.lp_budget);
  out.lp_iterations += lp.iterations;
  if (lp.status == LpStatus::kInterrupted) {
    state.budget_exhausted = true;
    state.interrupted = true;
    return;
  }
  if (lp.status == LpStatus::kError) {
    // Environmental failure (e.g. injected by a failpoint): abandon the
    // search and surface the underlying Status — an incumbent found before
    // the failure is not trustworthy evidence of optimality.
    out.status = LpStatus::kError;
    out.error = lp.error;
    state.budget_exhausted = true;
    return;
  }
  if (lp.status == LpStatus::kInfeasible) return;
  if (lp.status == LpStatus::kUnbounded) {
    // A bounded-below MIP cannot have an unbounded node unless the root is
    // unbounded; surface it.
    out.status = LpStatus::kUnbounded;
    state.budget_exhausted = true;
    return;
  }
  if (lp.status == LpStatus::kIterationLimit) {
    state.budget_exhausted = true;
    return;
  }

  // Bound pruning against the incumbent.
  if (out.has_incumbent) {
    double cutoff = state.options->objective_is_integral
                        ? out.objective - 1.0 + 1e-6
                        : out.objective - 1e-9;
    if (lp.objective > cutoff) return;
  }

  int branch_var = MostFractionalVariable(*state.problem, lp.values,
                                          state.options->integrality_tol);
  if (branch_var == -1) {
    // Integral: new incumbent (strictly better, else the prune above fired).
    if (!out.has_incumbent || lp.objective < out.objective) {
      out.has_incumbent = true;
      out.objective = lp.objective;
      out.values = lp.values;
    }
    return;
  }

  double value = lp.values[static_cast<size_t>(branch_var)];
  double saved_lower = state.problem->lower(branch_var);
  double saved_upper = state.problem->upper(branch_var);
  double floor_value = std::floor(value);

  // Dive first into the side the LP leans toward.
  bool up_first = (value - floor_value) >= 0.5;
  for (int side = 0; side < 2; ++side) {
    bool up = (side == 0) == up_first;
    if (up) {
      state.problem->SetBounds(branch_var,
                               std::max(saved_lower, floor_value + 1.0),
                               saved_upper);
    } else {
      state.problem->SetBounds(branch_var, saved_lower,
                               std::min(saved_upper, floor_value));
    }
    if (state.problem->lower(branch_var) <=
        state.problem->upper(branch_var)) {
      Dfs(state);
    }
    state.problem->SetBounds(branch_var, saved_lower, saved_upper);
    if (state.budget_exhausted) return;
  }
}

}  // namespace

MipSolver::MipSolver(MipOptions options) : options_(options) {}

MipSolution MipSolver::Solve(LpProblem problem,
                             const ExecutionBudget* budget) {
  MipSolution solution;
  RevisedSimplex simplex(options_.lp);
  SearchState state{&problem, &simplex, &options_, &solution};
  ExecutionBudget lp_budget;
  if (budget != nullptr) {
    state.budget = budget;
    lp_budget = *budget;
    lp_budget.SetMaxWork(0);  // node budget must not bind LP iterations
    state.lp_budget = &lp_budget;
  }
  {
    obs::TraceSpan bnb_span(obs::Phase::kBranchAndBound);
    Dfs(state);
  }
  obs::TraceStat(obs::Stat::kBnbNodes, solution.nodes);
  NodesCounter()->Add(solution.nodes);

  if (solution.status == LpStatus::kUnbounded ||
      solution.status == LpStatus::kError) {
    return solution;
  }
  if (state.interrupted) {
    solution.status = LpStatus::kInterrupted;
  } else if (state.budget_exhausted) {
    solution.status = LpStatus::kIterationLimit;
  } else {
    solution.status =
        solution.has_incumbent ? LpStatus::kOptimal : LpStatus::kInfeasible;
  }
  return solution;
}

}  // namespace osrs
