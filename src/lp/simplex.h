#ifndef OSRS_LP_SIMPLEX_H_
#define OSRS_LP_SIMPLEX_H_

#include <cstdint>
#include <vector>

#include "common/execution_budget.h"
#include "common/status.h"
#include "lp/lp_problem.h"

namespace osrs {

/// Termination state of an LP solve.
enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  /// Stopped early by an ExecutionBudget (deadline, work bound, or
  /// cancellation); ask the budget itself which one fired.
  kInterrupted,
  /// An environmental failure unrelated to the problem itself (today: an
  /// injected "osrs.lp.pivot" failpoint). The Status in `error` says what;
  /// the solution values are meaningless.
  kError,
};

const char* LpStatusToString(LpStatus status);

/// Solution of a continuous LP relaxation.
struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  /// Objective value at the returned point (valid for kOptimal).
  double objective = 0.0;
  /// Values of the problem's variables (structural only, no slacks).
  std::vector<double> values;
  /// Simplex iterations across both phases.
  int64_t iterations = 0;
  /// The failure behind LpStatus::kError; OK otherwise.
  Status error = Status::OK();
};

/// Tuning knobs of the simplex solver.
struct SimplexOptions {
  int64_t max_iterations = 200'000;
  /// Primal feasibility tolerance.
  double feasibility_tol = 1e-7;
  /// Reduced-cost optimality tolerance.
  double optimality_tol = 1e-7;
  /// Minimum admissible pivot magnitude.
  double pivot_tol = 1e-9;
  /// Consecutive degenerate pivots before switching to Bland's rule.
  int bland_trigger = 80;
  /// Recompute basic values from the eta file every this many iterations to
  /// curb incremental drift.
  int resync_period = 512;
};

/// Two-phase bounded-variable revised simplex with a product-form-of-inverse
/// (eta file) basis representation and sparse columns.
///
/// This is the repository's stand-in for the Gurobi dual simplex used in
/// §5.1: it solves the §4.2 k-median LP relaxations exactly. Phase 1 uses
/// per-row artificials only where the slack cannot serve as the initial
/// basic variable, so the k-median formulation (where root-assignment
/// variables and inequality slacks form a near-feasible start) enters
/// phase 2 after few pivots. Dantzig pricing with an automatic switch to
/// Bland's rule under prolonged degeneracy guarantees termination.
class RevisedSimplex {
 public:
  explicit RevisedSimplex(SimplexOptions options = {});

  /// Solves min c^T x over `problem`'s constraints and bounds. When
  /// `budget` is non-null it is polled every few iterations; an exhausted
  /// budget aborts the solve with LpStatus::kInterrupted.
  LpSolution Solve(const LpProblem& problem,
                   const ExecutionBudget* budget = nullptr);

 private:
  SimplexOptions options_;
};

}  // namespace osrs

#endif  // OSRS_LP_SIMPLEX_H_
