#include "lp/lp_problem.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"

namespace osrs {

int LpProblem::AddVariable(double lower, double upper, double objective,
                           bool is_integer, std::string name) {
  OSRS_CHECK_LE(lower, upper);
  int index = num_variables();
  lower_.push_back(lower);
  upper_.push_back(upper);
  objective_.push_back(objective);
  is_integer_.push_back(is_integer);
  if (name.empty()) name = StrFormat("x%d", index);
  names_.push_back(std::move(name));
  return index;
}

Result<int> LpProblem::AddConstraint(
    std::vector<std::pair<int, double>> terms, ConstraintSense sense,
    double rhs) {
  // Merge duplicate variables and validate indices.
  std::sort(terms.begin(), terms.end());
  std::vector<std::pair<int, double>> merged;
  merged.reserve(terms.size());
  for (const auto& [var, coeff] : terms) {
    if (var < 0 || var >= num_variables()) {
      return Status::InvalidArgument(
          StrFormat("constraint references unknown variable %d", var));
    }
    if (!merged.empty() && merged.back().first == var) {
      merged.back().second += coeff;
    } else {
      merged.emplace_back(var, coeff);
    }
  }
  std::erase_if(merged, [](const auto& term) { return term.second == 0.0; });
  int row = num_constraints();
  rows_.push_back(std::move(merged));
  senses_.push_back(sense);
  rhs_.push_back(rhs);
  return row;
}

size_t LpProblem::num_nonzeros() const {
  size_t total = 0;
  for (const auto& row : rows_) total += row.size();
  return total;
}

void LpProblem::SetBounds(int var, double lower, double upper) {
  OSRS_CHECK_GE(var, 0);
  OSRS_CHECK_LT(var, num_variables());
  lower_[static_cast<size_t>(var)] = lower;
  upper_[static_cast<size_t>(var)] = upper;
}

double LpProblem::EvaluateObjective(const std::vector<double>& x) const {
  OSRS_CHECK_EQ(x.size(), lower_.size());
  double total = 0.0;
  for (size_t j = 0; j < x.size(); ++j) total += objective_[j] * x[j];
  return total;
}

bool LpProblem::IsFeasible(const std::vector<double>& x, double tol) const {
  if (x.size() != lower_.size()) return false;
  for (size_t j = 0; j < x.size(); ++j) {
    if (x[j] < lower_[j] - tol || x[j] > upper_[j] + tol) return false;
  }
  for (int i = 0; i < num_constraints(); ++i) {
    double lhs = 0.0;
    for (const auto& [var, coeff] : rows_[static_cast<size_t>(i)]) {
      lhs += coeff * x[static_cast<size_t>(var)];
    }
    double b = rhs_[static_cast<size_t>(i)];
    switch (senses_[static_cast<size_t>(i)]) {
      case ConstraintSense::kLessEqual:
        if (lhs > b + tol) return false;
        break;
      case ConstraintSense::kEqual:
        if (std::abs(lhs - b) > tol) return false;
        break;
      case ConstraintSense::kGreaterEqual:
        if (lhs < b - tol) return false;
        break;
    }
  }
  return true;
}

}  // namespace osrs
