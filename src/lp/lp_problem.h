#ifndef OSRS_LP_LP_PROBLEM_H_
#define OSRS_LP_LP_PROBLEM_H_

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace osrs {

/// +∞ bound marker for LpProblem variables.
inline constexpr double kLpInfinity = std::numeric_limits<double>::infinity();

/// Direction of a linear constraint.
enum class ConstraintSense { kLessEqual, kEqual, kGreaterEqual };

/// A linear (mixed-integer) minimization program:
///
///   minimize    c^T x
///   subject to  row_i: Σ a_ij x_j  (<= | = | >=)  b_i
///               lower_j <= x_j <= upper_j
///               x_j integer for flagged variables
///
/// Built incrementally with AddVariable / AddConstraint and solved by
/// RevisedSimplex (continuous relaxation) or MipSolver (integral). This is
/// the project's stand-in for the Gurobi modeling layer used in §4.2/§5.1.
class LpProblem {
 public:
  LpProblem() = default;

  /// Adds a variable and returns its index. `lower`/`upper` may be
  /// ±kLpInfinity. `objective` is the cost coefficient.
  int AddVariable(double lower, double upper, double objective,
                  bool is_integer = false, std::string name = "");

  /// Adds a constraint over `terms` = {(variable index, coefficient), ...}.
  /// Terms with duplicate variable indices are summed. Returns the row
  /// index, or an error on out-of-range variables.
  Result<int> AddConstraint(std::vector<std::pair<int, double>> terms,
                            ConstraintSense sense, double rhs);

  int num_variables() const { return static_cast<int>(lower_.size()); }
  int num_constraints() const { return static_cast<int>(rhs_.size()); }
  size_t num_nonzeros() const;

  double lower(int var) const { return lower_[static_cast<size_t>(var)]; }
  double upper(int var) const { return upper_[static_cast<size_t>(var)]; }
  double objective(int var) const {
    return objective_[static_cast<size_t>(var)];
  }
  bool is_integer(int var) const {
    return is_integer_[static_cast<size_t>(var)];
  }
  const std::string& name(int var) const {
    return names_[static_cast<size_t>(var)];
  }

  ConstraintSense sense(int row) const {
    return senses_[static_cast<size_t>(row)];
  }
  double rhs(int row) const { return rhs_[static_cast<size_t>(row)]; }
  const std::vector<std::pair<int, double>>& row_terms(int row) const {
    return rows_[static_cast<size_t>(row)];
  }

  /// Tightens the bounds of `var` (used by branch & bound). Does not check
  /// lower <= upper; an empty box makes the LP infeasible, which the solver
  /// reports.
  void SetBounds(int var, double lower, double upper);

  /// Evaluates the objective at a full assignment.
  double EvaluateObjective(const std::vector<double>& x) const;

  /// True iff `x` satisfies all rows and bounds within `tol`.
  bool IsFeasible(const std::vector<double>& x, double tol = 1e-6) const;

 private:
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> objective_;
  std::vector<bool> is_integer_;
  std::vector<std::string> names_;
  std::vector<std::vector<std::pair<int, double>>> rows_;
  std::vector<ConstraintSense> senses_;
  std::vector<double> rhs_;
};

}  // namespace osrs

#endif  // OSRS_LP_LP_PROBLEM_H_
