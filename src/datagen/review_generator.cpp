#include "datagen/review_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/strings.h"
#include "sentiment/lexicon.h"

namespace osrs {
namespace {

/// Sentence templates; {term} is the concept surface form, {op} an opinion
/// word realizing the sentiment, {op2}/{term2} the optional second concept.
struct TemplateSet {
  std::vector<const char*> single;
  std::vector<const char*> dual;
  std::vector<const char*> filler;
};

const TemplateSet& DoctorTemplates() {
  static const TemplateSet& templates = *new TemplateSet{
      {
          "the {term} was {op}",
          "my {term} treatment felt {op}",
          "her handling of my {term} was {op}",
          "the doctor was {op} with my {term}",
          "follow up on the {term} was {op}",
          "i found the {term} care {op}",
          "management of {term} seemed {op}",
      },
      {
          "the {term} was {op} but the {term2} felt {op2}",
          "while my {term} care was {op}, the {term2} handling was {op2}",
      },
      {
          "i visited the office last month",
          "the waiting room was on the second floor",
          "i was referred by a friend",
          "parking took a while to find",
          "the front desk asked for my insurance card",
          "my appointment was on a tuesday",
      },
  };
  return templates;
}

const TemplateSet& PhoneTemplates() {
  static const TemplateSet& templates = *new TemplateSet{
      {
          "the {term} is {op}",
          "i think the {term} looks {op}",
          "this phone's {term} feels {op}",
          "honestly the {term} turned out {op}",
          "after a week the {term} is still {op}",
          "for the price the {term} is {op}",
          "{op} {term} on this model",
      },
      {
          "the {term} is {op} but the {term2} is {op2}",
          "{op} {term} although the {term2} seems {op2}",
      },
      {
          "i bought this phone last week",
          "it arrived in two days",
          "the box included a charger and a manual",
          "i switched from my old phone",
          "my daughter has the same model",
          "i use it mostly for email",
      },
  };
  return templates;
}

/// Replaces the first occurrence of `placeholder` in `text` with `value`.
void ReplaceFirst(std::string& text, std::string_view placeholder,
                  std::string_view value) {
  size_t pos = text.find(placeholder);
  if (pos != std::string::npos) {
    text.replace(pos, placeholder.size(), value);
  }
}

/// Shortest registered surface form of each concept (reads better in
/// templates than the serial-suffixed canonical names).
std::vector<std::string> BuildSurfaceForms(const Ontology& ontology) {
  std::vector<std::string> forms(ontology.num_concepts());
  for (ConceptId id = 0; id < static_cast<ConceptId>(ontology.num_concepts());
       ++id) {
    forms[static_cast<size_t>(id)] = ontology.name(id);
  }
  for (const auto& [term, id] : ontology.term_lexicon()) {
    if (StartsWith(term, "umls c")) continue;  // CUI-style ids read poorly
    std::string& current = forms[static_cast<size_t>(id)];
    if (term.size() < current.size()) current = term;
  }
  return forms;
}

/// An opinion phrase ("very great", "slightly bad") realizing `sentiment`.
std::string OpinionPhrase(double sentiment, Rng& rng) {
  const SentimentLexicon& lexicon = SentimentLexicon::Default();
  // Occasionally weaken the word and add an intensifier so the realized
  // phrase still reads back near the target strength.
  if (std::abs(sentiment) > 0.7 && rng.NextBernoulli(0.35)) {
    const std::string& word = lexicon.AdjectiveForStrength(sentiment * 0.6);
    return "very " + word;
  }
  return lexicon.AdjectiveForStrength(sentiment);
}

}  // namespace

Corpus GenerateReviewCorpus(const Ontology& ontology,
                            const ReviewGeneratorSpec& spec) {
  OSRS_CHECK_GE(spec.num_items, 1);
  OSRS_CHECK_GE(spec.min_reviews_per_item, 1);
  OSRS_CHECK_GE(spec.max_reviews_per_item, spec.min_reviews_per_item);
  OSRS_CHECK(ontology.finalized());

  Corpus corpus;
  corpus.domain = spec.domain;
  corpus.ontology = ontology;
  const TemplateSet& templates =
      spec.domain == "doctor" ? DoctorTemplates() : PhoneTemplates();
  Rng rng(spec.seed);

  // ---- Per-item review counts: lognormal, clamped, fixed up to the exact
  // total with the exact min and max represented (Table 1 rows).
  const int n = spec.num_items;
  const int64_t lo = static_cast<int64_t>(spec.min_reviews_per_item);
  const int64_t hi = static_cast<int64_t>(spec.max_reviews_per_item);
  int64_t total = std::clamp(spec.total_reviews, lo * n, hi * n);
  double mean_target = static_cast<double>(total) / n;
  // Lognormal mu so that the median sits below the mean (heavy upper tail).
  double mu = std::log(std::max(1.0, mean_target)) -
              0.5 * spec.review_count_sigma * spec.review_count_sigma;
  std::vector<int64_t> counts(static_cast<size_t>(n));
  for (auto& count : counts) {
    double sample = std::exp(rng.NextGaussian(mu, spec.review_count_sigma));
    count = std::clamp(static_cast<int64_t>(std::llround(sample)), lo, hi);
  }
  bool pin_extremes = n >= 3;
  if (pin_extremes) {
    counts[0] = hi;  // guarantee the documented max...
    counts[1] = lo;  // ...and min are hit exactly
  }
  // Adjust random items until the total matches exactly. If the pinned
  // extremes make the target unreachable (degenerate specs), unpin them.
  int64_t current = 0;
  for (int64_t count : counts) current += count;
  int64_t stalled = 0;
  while (current != total) {
    size_t index = static_cast<size_t>(rng.NextUint64(counts.size()));
    if (pin_extremes && (index == 0 || index == 1)) {
      if (++stalled > 1000 * n) pin_extremes = false;
      continue;
    }
    if (current < total && counts[index] < hi) {
      ++counts[index];
      ++current;
    } else if (current > total && counts[index] > lo) {
      --counts[index];
      --current;
    } else if (++stalled > 1000 * n) {
      pin_extremes = false;
    }
  }

  // ---- Concept popularity: Zipf ranks over a shuffled concept order.
  std::vector<ConceptId> concept_order;
  for (ConceptId id = 0; id < static_cast<ConceptId>(ontology.num_concepts());
       ++id) {
    if (id != ontology.root()) concept_order.push_back(id);
  }
  rng.Shuffle(concept_order);
  std::vector<std::string> surface = BuildSurfaceForms(ontology);

  auto sample_concept = [&]() -> ConceptId {
    uint64_t rank = rng.NextZipf(concept_order.size(), spec.concept_zipf_s);
    return concept_order[rank];
  };

  // ---- Items.
  const int sentence_base = static_cast<int>(spec.avg_sentences_per_review);
  const double sentence_frac =
      spec.avg_sentences_per_review - sentence_base;
  corpus.items.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Item item;
    item.id = StrFormat("%s-%04d", spec.domain.c_str(), i);
    double item_quality = Clamp(
        rng.NextGaussian(spec.item_quality_mean, spec.item_quality_stddev),
        -0.9, 0.9);
    // Lazily materialized per-concept aspect qualities for this item.
    std::unordered_map<ConceptId, double> aspect_quality;
    auto quality_of = [&](ConceptId concept_id) {
      auto it = aspect_quality.find(concept_id);
      if (it == aspect_quality.end()) {
        double q = Clamp(item_quality + rng.NextGaussian(0, spec.aspect_noise),
                         -1.0, 1.0);
        it = aspect_quality.emplace(concept_id, q).first;
      }
      return it->second;
    };

    item.reviews.reserve(static_cast<size_t>(counts[static_cast<size_t>(i)]));
    for (int64_t r = 0; r < counts[static_cast<size_t>(i)]; ++r) {
      Review review;
      // Sentence count: base (+1 with prob frac) + uniform jitter in
      // [-2, 2], clamped to >= 1; expectation = the configured average for
      // base >= 3 (jitter clamps are symmetric there).
      int num_sentences = sentence_base +
                          (rng.NextBernoulli(sentence_frac) ? 1 : 0) +
                          static_cast<int>(rng.NextInt(-2, 2));
      num_sentences = std::max(1, num_sentences);
      double sentiment_sum = 0.0;
      int sentiment_count = 0;
      for (int s = 0; s < num_sentences; ++s) {
        Sentence sentence;
        if (rng.NextBernoulli(spec.concept_sentence_prob)) {
          ConceptId c1 = sample_concept();
          double s1 = Clamp(
              quality_of(c1) + rng.NextGaussian(0, spec.mention_noise), -1.0,
              1.0);
          bool dual = rng.NextBernoulli(spec.second_concept_prob) &&
                      !templates.dual.empty();
          if (dual) {
            ConceptId c2 = sample_concept();
            if (c2 == c1) {
              dual = false;
            } else {
              double s2 = Clamp(
                  quality_of(c2) + rng.NextGaussian(0, spec.mention_noise),
                  -1.0, 1.0);
              std::string text = templates.dual[rng.NextUint64(
                  templates.dual.size())];
              ReplaceFirst(text, "{term}", surface[static_cast<size_t>(c1)]);
              ReplaceFirst(text, "{op}", OpinionPhrase(s1, rng));
              ReplaceFirst(text, "{term2}", surface[static_cast<size_t>(c2)]);
              ReplaceFirst(text, "{op2}", OpinionPhrase(s2, rng));
              sentence.text = std::move(text);
              sentence.pairs = {{c1, s1}, {c2, s2}};
              sentiment_sum += s1 + s2;
              sentiment_count += 2;
            }
          }
          if (!dual) {
            std::string text = templates.single[rng.NextUint64(
                templates.single.size())];
            ReplaceFirst(text, "{term}", surface[static_cast<size_t>(c1)]);
            ReplaceFirst(text, "{op}", OpinionPhrase(s1, rng));
            sentence.text = std::move(text);
            sentence.pairs = {{c1, s1}};
            sentiment_sum += s1;
            sentiment_count += 1;
          }
        } else {
          sentence.text =
              templates.filler[rng.NextUint64(templates.filler.size())];
        }
        review.sentences.push_back(std::move(sentence));
      }
      double base_rating = sentiment_count > 0
                               ? sentiment_sum / sentiment_count
                               : item_quality;
      review.rating = Clamp(base_rating + rng.NextGaussian(0, 0.1), -1.0, 1.0);
      item.reviews.push_back(std::move(review));
    }
    corpus.items.push_back(std::move(item));
  }
  return corpus;
}

}  // namespace osrs
