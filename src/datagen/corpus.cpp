#include "datagen/corpus.h"

#include <algorithm>
#include <limits>

namespace osrs {

CorpusStats ComputeStats(const Corpus& corpus) {
  CorpusStats stats;
  stats.num_items = corpus.items.size();
  stats.min_reviews_per_item = std::numeric_limits<int>::max();
  for (const Item& item : corpus.items) {
    int reviews = static_cast<int>(item.reviews.size());
    stats.num_reviews += static_cast<size_t>(reviews);
    stats.min_reviews_per_item = std::min(stats.min_reviews_per_item, reviews);
    stats.max_reviews_per_item = std::max(stats.max_reviews_per_item, reviews);
    for (const Review& review : item.reviews) {
      stats.num_sentences += review.sentences.size();
      for (const Sentence& sentence : review.sentences) {
        stats.num_pairs += sentence.pairs.size();
      }
    }
  }
  if (stats.num_items == 0) stats.min_reviews_per_item = 0;
  if (stats.num_reviews > 0) {
    stats.avg_sentences_per_review =
        static_cast<double>(stats.num_sentences) /
        static_cast<double>(stats.num_reviews);
  }
  return stats;
}

}  // namespace osrs
