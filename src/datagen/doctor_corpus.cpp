#include "datagen/doctor_corpus.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "datagen/review_generator.h"
#include "ontology/snomed_like.h"

namespace osrs {

Corpus GenerateDoctorCorpus(const DoctorCorpusOptions& options) {
  OSRS_CHECK_GT(options.scale, 0.0);
  SnomedLikeOptions ontology_options;
  ontology_options.num_concepts = options.ontology_concepts;
  ontology_options.seed = options.seed;
  Ontology ontology = BuildSnomedLikeOntology(ontology_options);

  ReviewGeneratorSpec spec;
  spec.domain = "doctor";
  spec.num_items =
      std::max(1, static_cast<int>(std::lround(1000 * options.scale)));
  spec.min_reviews_per_item = 43;
  spec.max_reviews_per_item = 354;
  spec.total_reviews = static_cast<int64_t>(std::llround(68686 * options.scale));
  spec.avg_sentences_per_review = 4.87;
  spec.concept_sentence_prob = 0.7;
  spec.second_concept_prob = 0.12;
  spec.seed = options.seed + 1;
  return GenerateReviewCorpus(ontology, spec);
}

}  // namespace osrs
