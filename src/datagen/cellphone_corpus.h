#ifndef OSRS_DATAGEN_CELLPHONE_CORPUS_H_
#define OSRS_DATAGEN_CELLPHONE_CORPUS_H_

#include <cstdint>

#include "datagen/corpus.h"

namespace osrs {

/// Options of the synthetic cell-phone review corpus (the Amazon unlocked-
/// phone dataset stand-in, Table 1 column 2: 60 phones, 33,578 reviews,
/// min 102 / max 3200 reviews per phone, 3.81 sentences per review), over
/// the Fig. 3 aspect hierarchy.
struct CellPhoneCorpusOptions {
  /// Scales item and review counts (1.0 = the full Table 1 size).
  double scale = 1.0;
  uint64_t seed = 43;
};

/// Generates the cell-phone corpus over the Fig. 3 hierarchy.
Corpus GenerateCellPhoneCorpus(const CellPhoneCorpusOptions& options);

}  // namespace osrs

#endif  // OSRS_DATAGEN_CELLPHONE_CORPUS_H_
