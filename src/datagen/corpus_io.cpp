#include "datagen/corpus_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/strings.h"
#include "fault/failpoint.h"
#include "store/atomic_file.h"

namespace osrs {
namespace {

bool HasForbiddenChars(std::string_view text) {
  return text.find('\t') != std::string_view::npos ||
         text.find('\n') != std::string_view::npos;
}

/// Renders the current errno as "<name/message> (errno N)" for file-level
/// load/save errors: the *why* next to the *what*.
std::string ErrnoDetail() {
  int saved = errno;
  return StrFormat("%s (errno %d)", std::strerror(saved), saved);
}

}  // namespace

Result<std::string> SaveCorpus(const Corpus& corpus) {
  if (!corpus.ontology.finalized()) {
    return Status::FailedPrecondition("corpus ontology is not finalized");
  }
  std::string out = "# osrs-corpus v1\n";
  out += "D\t" + corpus.domain + "\n";
  // Inline the ontology with '|' as the line separator ('|' never appears
  // in the ontology serialization itself).
  std::string onto = corpus.ontology.Serialize();
  for (char& c : onto) {
    if (c == '\n') c = '|';
  }
  out += "O\t" + onto + "\n";
  for (const Item& item : corpus.items) {
    if (HasForbiddenChars(item.id)) {
      return Status::InvalidArgument(
          StrFormat("item id '%s' contains tab/newline", item.id.c_str()));
    }
    out += "I\t" + item.id + "\n";
    for (const Review& review : item.reviews) {
      out += StrFormat("R\t%.17g\n", review.rating);
      for (const Sentence& sentence : review.sentences) {
        if (HasForbiddenChars(sentence.text)) {
          return Status::InvalidArgument("sentence text contains tab/newline");
        }
        out += "S\t" + sentence.text;
        for (const ConceptSentimentPair& pair : sentence.pairs) {
          out += StrFormat("\t%d:%.17g", pair.concept_id, pair.sentiment);
        }
        out += '\n';
      }
    }
  }
  return out;
}

Result<Corpus> LoadCorpus(std::string_view text) {
  Corpus corpus;
  bool have_ontology = false;
  Item* item = nullptr;
  Review* review = nullptr;
  // 1-based line number of the record being parsed, carried into every
  // error so a truncated or hand-edited corpus pinpoints its bad line.
  int64_t line = 0;
  auto parse_error = [&line](std::string detail) {
    return Status::InvalidArgument(
        StrFormat("line %lld: %s", static_cast<long long>(line),
                  detail.c_str()));
  };
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line;
    if (raw_line.empty() || raw_line[0] == '#') continue;
    // Only the record kind is split off here; the remainder may itself
    // contain tabs (the inlined ontology serialization does).
    size_t tab = raw_line.find('\t');
    if (tab == std::string::npos) {
      return parse_error(
          StrFormat("record without payload: '%s'", raw_line.c_str()));
    }
    std::string kind = raw_line.substr(0, tab);
    std::string payload = raw_line.substr(tab + 1);
    if (kind == "D") {
      corpus.domain = payload;
    } else if (kind == "O") {
      for (char& c : payload) {
        if (c == '|') c = '\n';
      }
      auto parsed = Ontology::Deserialize(payload);
      if (!parsed.ok()) {
        return parse_error(StrFormat("ontology record: %s",
                                     parsed.status().message().c_str()));
      }
      corpus.ontology = std::move(parsed).value();
      have_ontology = true;
    } else if (kind == "I") {
      corpus.items.emplace_back();
      item = &corpus.items.back();
      item->id = payload;
      review = nullptr;
    } else if (kind == "R") {
      if (item == nullptr) {
        return parse_error("R line before any item");
      }
      double rating = 0.0;
      if (!ParseDouble(payload, &rating)) {
        return parse_error(
            StrFormat("malformed rating '%s'", payload.c_str()));
      }
      item->reviews.emplace_back();
      review = &item->reviews.back();
      review->rating = rating;
    } else if (kind == "S") {
      if (review == nullptr) {
        return parse_error("S line before any review");
      }
      std::vector<std::string> fields = Split(payload, '\t');
      Sentence sentence;
      sentence.text = fields[0];
      for (size_t f = 1; f < fields.size(); ++f) {
        size_t colon = fields[f].find(':');
        if (colon == std::string::npos) {
          return parse_error(
              StrFormat("bad pair field '%s'", fields[f].c_str()));
        }
        int64_t concept_id = 0;
        double sentiment = 0.0;
        if (!ParseInt64(fields[f].substr(0, colon), &concept_id) ||
            !ParseDouble(fields[f].substr(colon + 1), &sentiment)) {
          return parse_error(
              StrFormat("bad pair field '%s'", fields[f].c_str()));
        }
        ConceptSentimentPair pair;
        pair.concept_id = static_cast<ConceptId>(concept_id);
        pair.sentiment = sentiment;
        if (have_ontology &&
            (pair.concept_id < 0 ||
             static_cast<size_t>(pair.concept_id) >=
                 corpus.ontology.num_concepts())) {
          return parse_error(StrFormat("pair references unknown concept %d",
                                       pair.concept_id));
        }
        sentence.pairs.push_back(pair);
      }
      review->sentences.push_back(std::move(sentence));
    } else {
      return parse_error(
          StrFormat("unknown record kind '%s'", kind.c_str()));
    }
  }
  if (!have_ontology) {
    return Status::InvalidArgument("corpus has no ontology record");
  }
  return corpus;
}

Status WriteTextFile(const std::string& path, std::string_view contents) {
  // The osrs.io.write failpoint keeps its historical position — before
  // anything touches the filesystem — so existing chaos specs behave
  // unchanged. The write itself goes through the durability layer's
  // atomic temp + fsync + rename, which upgrades this function's
  // contract: on any failure (injected osrs.store.* faults included) the
  // previous file contents survive intact; a torn corpus file can no
  // longer exist.
  OSRS_RETURN_IF_ERROR(OSRS_FAILPOINT("osrs.io.write"));
  return store::AtomicWriteFile(path, contents);
}

Result<std::string> ReadTextFile(const std::string& path) {
  OSRS_RETURN_IF_ERROR(OSRS_FAILPOINT("osrs.io.read"));
  errno = 0;
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (file == nullptr) {
    // Only a genuinely missing file is kNotFound (permanent); permission or
    // other open failures are kUnavailable so RetryPolicy may retry them.
    if (errno == ENOENT) {
      return Status::NotFound(StrFormat("cannot open '%s': %s", path.c_str(),
                                        ErrnoDetail().c_str()));
    }
    return Status::Unavailable(StrFormat("cannot open '%s': %s", path.c_str(),
                                         ErrnoDetail().c_str()));
  }
  std::string contents;
  char buffer[1 << 16];
  size_t got;
  errno = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file.get())) > 0) {
    contents.append(buffer, got);
  }
  if (std::ferror(file.get()) != 0) {
    return Status::Unavailable(StrFormat("read error on '%s': %s",
                                         path.c_str(), ErrnoDetail().c_str()));
  }
  return contents;
}

Status SaveCorpusToFile(const Corpus& corpus, const std::string& path) {
  auto serialized = SaveCorpus(corpus);
  OSRS_RETURN_IF_ERROR(serialized.status());
  return WriteTextFile(path, *serialized);
}

Result<Corpus> LoadCorpusFromFile(const std::string& path) {
  auto contents = ReadTextFile(path);
  OSRS_RETURN_IF_ERROR(contents.status());
  return LoadCorpus(*contents);
}

}  // namespace osrs
