#include "datagen/corpus_io.h"

#include <cstdio>
#include <memory>

#include "common/strings.h"

namespace osrs {
namespace {

bool HasForbiddenChars(std::string_view text) {
  return text.find('\t') != std::string_view::npos ||
         text.find('\n') != std::string_view::npos;
}

}  // namespace

Result<std::string> SaveCorpus(const Corpus& corpus) {
  if (!corpus.ontology.finalized()) {
    return Status::FailedPrecondition("corpus ontology is not finalized");
  }
  std::string out = "# osrs-corpus v1\n";
  out += "D\t" + corpus.domain + "\n";
  // Inline the ontology with '|' as the line separator ('|' never appears
  // in the ontology serialization itself).
  std::string onto = corpus.ontology.Serialize();
  for (char& c : onto) {
    if (c == '\n') c = '|';
  }
  out += "O\t" + onto + "\n";
  for (const Item& item : corpus.items) {
    if (HasForbiddenChars(item.id)) {
      return Status::InvalidArgument(
          StrFormat("item id '%s' contains tab/newline", item.id.c_str()));
    }
    out += "I\t" + item.id + "\n";
    for (const Review& review : item.reviews) {
      out += StrFormat("R\t%.17g\n", review.rating);
      for (const Sentence& sentence : review.sentences) {
        if (HasForbiddenChars(sentence.text)) {
          return Status::InvalidArgument("sentence text contains tab/newline");
        }
        out += "S\t" + sentence.text;
        for (const ConceptSentimentPair& pair : sentence.pairs) {
          out += StrFormat("\t%d:%.17g", pair.concept_id, pair.sentiment);
        }
        out += '\n';
      }
    }
  }
  return out;
}

Result<Corpus> LoadCorpus(std::string_view text) {
  Corpus corpus;
  bool have_ontology = false;
  Item* item = nullptr;
  Review* review = nullptr;
  for (const std::string& raw_line : Split(text, '\n')) {
    if (raw_line.empty() || raw_line[0] == '#') continue;
    // Only the record kind is split off here; the remainder may itself
    // contain tabs (the inlined ontology serialization does).
    size_t tab = raw_line.find('\t');
    if (tab == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("record without payload: '%s'", raw_line.c_str()));
    }
    std::string kind = raw_line.substr(0, tab);
    std::string payload = raw_line.substr(tab + 1);
    if (kind == "D") {
      corpus.domain = payload;
    } else if (kind == "O") {
      for (char& c : payload) {
        if (c == '|') c = '\n';
      }
      auto parsed = Ontology::Deserialize(payload);
      OSRS_RETURN_IF_ERROR(parsed.status());
      corpus.ontology = std::move(parsed).value();
      have_ontology = true;
    } else if (kind == "I") {
      corpus.items.emplace_back();
      item = &corpus.items.back();
      item->id = payload;
      review = nullptr;
    } else if (kind == "R") {
      if (item == nullptr) {
        return Status::InvalidArgument("R line before any item");
      }
      double rating = 0.0;
      if (!ParseDouble(payload, &rating)) {
        return Status::InvalidArgument(
            StrFormat("malformed rating '%s'", payload.c_str()));
      }
      item->reviews.emplace_back();
      review = &item->reviews.back();
      review->rating = rating;
    } else if (kind == "S") {
      if (review == nullptr) {
        return Status::InvalidArgument("S line before any review");
      }
      std::vector<std::string> fields = Split(payload, '\t');
      Sentence sentence;
      sentence.text = fields[0];
      for (size_t f = 1; f < fields.size(); ++f) {
        size_t colon = fields[f].find(':');
        if (colon == std::string::npos) {
          return Status::InvalidArgument(
              StrFormat("bad pair field '%s'", fields[f].c_str()));
        }
        int64_t concept_id = 0;
        double sentiment = 0.0;
        if (!ParseInt64(fields[f].substr(0, colon), &concept_id) ||
            !ParseDouble(fields[f].substr(colon + 1), &sentiment)) {
          return Status::InvalidArgument(
              StrFormat("bad pair field '%s'", fields[f].c_str()));
        }
        ConceptSentimentPair pair;
        pair.concept_id = static_cast<ConceptId>(concept_id);
        pair.sentiment = sentiment;
        if (have_ontology &&
            (pair.concept_id < 0 ||
             static_cast<size_t>(pair.concept_id) >=
                 corpus.ontology.num_concepts())) {
          return Status::InvalidArgument(
              StrFormat("pair references unknown concept %d",
                        pair.concept_id));
        }
        sentence.pairs.push_back(pair);
      }
      review->sentences.push_back(std::move(sentence));
    } else {
      return Status::InvalidArgument(
          StrFormat("unknown record kind '%s'", kind.c_str()));
    }
  }
  if (!have_ontology) {
    return Status::InvalidArgument("corpus has no ontology record");
  }
  return corpus;
}

Status SaveCorpusToFile(const Corpus& corpus, const std::string& path) {
  auto serialized = SaveCorpus(corpus);
  OSRS_RETURN_IF_ERROR(serialized.status());
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (file == nullptr) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  size_t written =
      std::fwrite(serialized->data(), 1, serialized->size(), file.get());
  if (written != serialized->size()) {
    return Status::Internal(StrFormat("short write to '%s'", path.c_str()));
  }
  return Status::OK();
}

Result<Corpus> LoadCorpusFromFile(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (file == nullptr) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::string contents;
  char buffer[1 << 16];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file.get())) > 0) {
    contents.append(buffer, got);
  }
  return LoadCorpus(contents);
}

}  // namespace osrs
