#include "datagen/cellphone_corpus.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "datagen/review_generator.h"
#include "ontology/cellphone_hierarchy.h"

namespace osrs {

Corpus GenerateCellPhoneCorpus(const CellPhoneCorpusOptions& options) {
  OSRS_CHECK_GT(options.scale, 0.0);
  Ontology ontology = BuildCellPhoneHierarchy();

  ReviewGeneratorSpec spec;
  spec.domain = "phone";
  spec.num_items =
      std::max(1, static_cast<int>(std::lround(60 * options.scale)));
  spec.min_reviews_per_item = 102;
  spec.max_reviews_per_item = 3200;
  spec.total_reviews =
      static_cast<int64_t>(std::llround(33578 * options.scale));
  spec.avg_sentences_per_review = 3.81;
  spec.concept_sentence_prob = 0.8;
  spec.second_concept_prob = 0.18;
  spec.seed = options.seed + 1;
  return GenerateReviewCorpus(ontology, spec);
}

}  // namespace osrs
