#ifndef OSRS_DATAGEN_DOCTOR_CORPUS_H_
#define OSRS_DATAGEN_DOCTOR_CORPUS_H_

#include <cstdint>

#include "datagen/corpus.h"

namespace osrs {

/// Options of the synthetic doctor-review corpus (the vitals.com dataset
/// stand-in, Table 1 column 1: 1000 doctors, 68,686 reviews, min 43 /
/// max 354 reviews per doctor, 4.87 sentences per review on average).
struct DoctorCorpusOptions {
  /// Scales item and review counts (1.0 = the full Table 1 size). Smaller
  /// scales are used by tests and the time-boxed quantitative benches.
  double scale = 1.0;
  /// Concepts in the SNOMED-like ontology.
  int ontology_concepts = 5000;
  uint64_t seed = 42;
};

/// Generates the doctor corpus over a SNOMED-like ontology.
Corpus GenerateDoctorCorpus(const DoctorCorpusOptions& options);

}  // namespace osrs

#endif  // OSRS_DATAGEN_DOCTOR_CORPUS_H_
