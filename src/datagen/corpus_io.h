#ifndef OSRS_DATAGEN_CORPUS_IO_H_
#define OSRS_DATAGEN_CORPUS_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "datagen/corpus.h"

namespace osrs {

/// Serializes a corpus to a line-oriented, tab-separated text format:
///
///   # osrs-corpus v1
///   D <domain>
///   O <ontology serialized inline, '|' replacing newlines>
///   I <item id>
///   R <rating>
///   S <text> [<concept id>:<sentiment>]...
///
/// Items own the R/S lines that follow them; reviews own their S lines.
/// Round-trips through LoadCorpus. Sentence text must not contain tabs or
/// newlines (the generator never emits them; SaveCorpus rejects them).
Result<std::string> SaveCorpus(const Corpus& corpus);

/// Parses the SaveCorpus format. Parse failures are kInvalidArgument with a
/// "line N:" prefix naming the 1-based offending line.
Result<Corpus> LoadCorpus(std::string_view text);

/// Convenience file wrappers. File-level failures carry strerror/errno
/// context. A missing input file is kNotFound (permanent); every other I/O
/// failure — open permission, read error mid-file, short write — is
/// kUnavailable, i.e. retryable under StatusCodeIsRetryable(). Both honor
/// the "osrs.io.write" / "osrs.io.read" failpoints (src/fault/failpoint.h).
Status SaveCorpusToFile(const Corpus& corpus, const std::string& path);
Result<Corpus> LoadCorpusFromFile(const std::string& path);

/// Generic whole-file text I/O with the same failure contract as the
/// corpus wrappers above: missing input is kNotFound (permanent), every
/// other failure is kUnavailable (retryable), and both honor the
/// "osrs.io.read" / "osrs.io.write" failpoints. Tools route their file
/// traffic through these so fault-injection runs and coded-Status error
/// reporting cover tool I/O too (e.g. osrs_stats --registry, the
/// osrs_serve metrics exporter).
///
/// WriteTextFile is atomic and durable (store/atomic_file.h: temp file +
/// fsync + rename): on ANY failure — including injected osrs.store.*
/// faults and real crashes — the previous contents of `path` survive
/// intact; readers can never observe a torn file.
Status WriteTextFile(const std::string& path, std::string_view contents);
Result<std::string> ReadTextFile(const std::string& path);

}  // namespace osrs

#endif  // OSRS_DATAGEN_CORPUS_IO_H_
