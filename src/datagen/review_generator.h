#ifndef OSRS_DATAGEN_REVIEW_GENERATOR_H_
#define OSRS_DATAGEN_REVIEW_GENERATOR_H_

#include <cstdint>
#include <string>

#include "datagen/corpus.h"
#include "ontology/ontology.h"

namespace osrs {

/// Parameters of the synthetic review generator. One engine serves both
/// domains; the domain string selects the sentence template set.
///
/// The generator reproduces the distributional properties the paper's
/// algorithms are sensitive to: per-item review counts between an exact
/// min and max summing to an exact total (Table 1), a target mean sentences
/// per review, Zipf-skewed concept popularity (a few aspects dominate, as
/// with real products), and a two-level sentiment model — each item has a
/// latent quality, each (item, concept) a quality offset, and each mention
/// adds observation noise — so the same concept recurs with *clustered but
/// graded* sentiments, which is precisely the regime where graded coverage
/// beats boolean polarity.
struct ReviewGeneratorSpec {
  std::string domain = "phone";  // "doctor" or "phone"
  int num_items = 10;
  int min_reviews_per_item = 5;
  int max_reviews_per_item = 50;
  /// Exact corpus-wide review count; clamped into
  /// [num_items*min, num_items*max].
  int64_t total_reviews = 200;
  double avg_sentences_per_review = 4.0;
  /// Spread (lognormal sigma) of per-item review counts before fix-up.
  double review_count_sigma = 0.7;

  /// Probability that a sentence mentions a concept (else filler text).
  double concept_sentence_prob = 0.75;
  /// Probability that a concept sentence mentions a second concept.
  double second_concept_prob = 0.15;
  /// Zipf exponent of concept popularity over the ontology.
  double concept_zipf_s = 1.05;

  double item_quality_mean = 0.25;
  double item_quality_stddev = 0.4;
  /// Spread of per-(item, concept) quality around the item quality.
  double aspect_noise = 0.35;
  /// Observation noise of one mention around the aspect quality.
  double mention_noise = 0.2;

  uint64_t seed = 42;
};

/// Generates a corpus over `ontology` (copied into the result).
Corpus GenerateReviewCorpus(const Ontology& ontology,
                            const ReviewGeneratorSpec& spec);

}  // namespace osrs

#endif  // OSRS_DATAGEN_REVIEW_GENERATOR_H_
