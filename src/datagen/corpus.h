#ifndef OSRS_DATAGEN_CORPUS_H_
#define OSRS_DATAGEN_CORPUS_H_

#include <string>
#include <vector>

#include "core/model.h"
#include "ontology/ontology.h"

namespace osrs {

/// A review dataset: the concept hierarchy plus all items with their
/// reviews. Sentences carry both realized English text and the generator's
/// ground-truth concept-sentiment pairs, so experiments can run either on
/// the annotations directly (quantitative, §5.2) or through the full
/// extraction/sentiment pipeline (qualitative, §5.3).
struct Corpus {
  std::string domain;  // "doctor" or "cellphone"
  Ontology ontology;
  std::vector<Item> items;
};

/// The Table 1 characteristics of a corpus.
struct CorpusStats {
  size_t num_items = 0;
  size_t num_reviews = 0;
  size_t num_sentences = 0;
  size_t num_pairs = 0;
  int min_reviews_per_item = 0;
  int max_reviews_per_item = 0;
  double avg_sentences_per_review = 0.0;
};

CorpusStats ComputeStats(const Corpus& corpus);

}  // namespace osrs

#endif  // OSRS_DATAGEN_CORPUS_H_
