#include "solver/local_search.h"

#include <algorithm>
#include <vector>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace osrs {
namespace {

obs::Counter* SolvesCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("osrs.local_search.solves");
  return counter;
}

/// First- and second-best coverage of every target under a selection, with
/// the owner of the best. The implicit root is folded in as owner -1.
struct CoverageState {
  std::vector<double> best1;
  std::vector<int> owner1;   // selected candidate index, or -1 for the root
  std::vector<double> best2;

  void Rebuild(const CoverageGraph& graph, const std::vector<int>& selected) {
    const size_t n = static_cast<size_t>(graph.num_targets());
    best1.resize(n);
    best2.resize(n);
    owner1.assign(n, -1);
    for (size_t w = 0; w < n; ++w) {
      best1[w] = graph.root_distance(static_cast<int>(w));
      best2[w] = best1[w];  // the root never leaves, so it backstops both
    }
    for (int u : selected) {
      for (const CoverageGraph::Edge& e : graph.EdgesOf(u)) {
        size_t w = static_cast<size_t>(e.endpoint);
        if (e.weight < best1[w]) {
          best2[w] = best1[w];
          best1[w] = e.weight;
          owner1[w] = u;
        } else if (e.weight < best2[w]) {
          best2[w] = e.weight;
        }
      }
    }
  }
};

}  // namespace

LocalSearchSummarizer::LocalSearchSummarizer(LocalSearchOptions options)
    : options_(options) {}

Result<SummaryResult> LocalSearchSummarizer::Summarize(
    const CoverageGraph& graph, int k, const ExecutionBudget& budget) {
  Stopwatch watch;
  auto seed = greedy_.Summarize(graph, k, budget);
  OSRS_RETURN_IF_ERROR(seed.status());
  if (seed->approximate) {
    // The budget already ran out inside the greedy seed; polishing is off
    // the table, so hand the partial greedy incumbent through unchanged.
    return seed;
  }
  std::vector<int> selected = seed->selected;
  double cost = seed->cost;

  std::vector<bool> is_selected(static_cast<size_t>(graph.num_candidates()),
                                false);
  for (int u : selected) is_selected[static_cast<size_t>(u)] = true;

  CoverageState state;
  int64_t swaps_applied = 0;
  // Scratch: distance from the incoming candidate to each target (∞ when
  // not adjacent); reset sparsely between candidates.
  std::vector<double> in_distance(static_cast<size_t>(graph.num_targets()),
                                  kInfiniteDistance);

  // Non-OK once the budget fires mid-polish; the greedy-seeded solution in
  // `selected` stays valid at every point, so it becomes the incumbent.
  Status budget_status = Status::OK();

  for (int pass = 0;
       pass < options_.max_passes && budget_status.ok(); ++pass) {
    budget_status = budget.Check(swaps_applied);
    if (!budget_status.ok()) break;
    // One span per pass, so the trace's call count equals the number of
    // polish passes actually run.
    obs::TraceSpan pass_span(obs::Phase::kLocalSearchPasses);
    state.Rebuild(graph, selected);
    double best_delta = -options_.min_improvement;
    size_t best_out_pos = 0;
    int best_in = -1;

    for (int u_in = 0; u_in < graph.num_candidates(); ++u_in) {
      if (u_in % 64 == 0) {
        budget_status = budget.Check(swaps_applied);
        if (!budget_status.ok()) break;
      }
      if (is_selected[static_cast<size_t>(u_in)]) continue;
      for (const CoverageGraph::Edge& e : graph.EdgesOf(u_in)) {
        in_distance[static_cast<size_t>(e.endpoint)] = e.weight;
      }
      for (size_t out_pos = 0; out_pos < selected.size(); ++out_pos) {
        const int u_out = selected[out_pos];
        // Delta over targets adjacent to u_in or owned by u_out; all other
        // targets keep their current coverage.
        double delta = 0.0;
        for (const CoverageGraph::Edge& e : graph.EdgesOf(u_in)) {
          size_t w = static_cast<size_t>(e.endpoint);
          double base = state.owner1[w] == u_out ? state.best2[w]
                                                 : state.best1[w];
          double now = std::min(base, static_cast<double>(e.weight));
          delta += (now - state.best1[w]) * graph.target_weight(e.endpoint);
        }
        for (const CoverageGraph::Edge& e : graph.EdgesOf(u_out)) {
          size_t w = static_cast<size_t>(e.endpoint);
          if (state.owner1[w] != u_out) continue;
          if (in_distance[w] < kInfiniteDistance) continue;  // counted above
          delta += (state.best2[w] - state.best1[w]) *
                   graph.target_weight(e.endpoint);
        }
        if (delta < best_delta) {
          best_delta = delta;
          best_out_pos = out_pos;
          best_in = u_in;
        }
      }
      for (const CoverageGraph::Edge& e : graph.EdgesOf(u_in)) {
        in_distance[static_cast<size_t>(e.endpoint)] = kInfiniteDistance;
      }
    }

    if (best_in < 0) break;  // local optimum
    is_selected[static_cast<size_t>(selected[best_out_pos])] = false;
    is_selected[static_cast<size_t>(best_in)] = true;
    selected[best_out_pos] = best_in;
    ++swaps_applied;
    cost = graph.CostOfSelection(selected);  // exact, avoids delta drift
  }

  obs::TraceStat(obs::Stat::kSwapsApplied, swaps_applied);
  if (!budget_status.ok()) {
    if (budget_status.code() == StatusCode::kCancelled) return budget_status;
    // Deadline/work trip mid-polish: the greedy-seeded selection is a valid
    // incumbent at every point, but the polish is incomplete.
  }
  SolvesCounter()->Increment();
  SummaryResult result;
  result.selected = std::move(selected);
  result.cost = cost;
  result.seconds = watch.ElapsedSeconds();
  result.work = swaps_applied;
  result.approximate = !budget_status.ok();
  result.stop_reason = budget_status.code();
  return result;
}

}  // namespace osrs
