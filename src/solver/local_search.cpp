#include "solver/local_search.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/arena.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace osrs {
namespace {

obs::Counter* SolvesCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("osrs.local_search.solves");
  return counter;
}

/// First- and second-best coverage of every target under a selection, with
/// the owner of the best. The implicit root is folded in as owner -1.
/// Arena-backed: spans are allocated once per solve and refilled per pass.
/// Distances are float (integral hop counts, exact); the swap deltas below
/// compute in double over the same values the old double state held.
struct CoverageState {
  std::span<float> best1;
  std::span<int32_t> owner1;  // selected candidate index, or -1 for the root
  std::span<float> best2;

  void Allocate(Arena& arena, size_t num_targets) {
    best1 = arena.AllocateArray<float>(num_targets);
    best2 = arena.AllocateArray<float>(num_targets);
    owner1 = arena.AllocateArray<int32_t>(num_targets);
  }

  void Rebuild(const CoverageGraph& graph, const std::vector<int>& selected) {
    std::copy(graph.root_distances_f32(),
              graph.root_distances_f32() + best1.size(), best1.begin());
    // The root never leaves, so it backstops both.
    std::copy(best1.begin(), best1.end(), best2.begin());
    std::fill(owner1.begin(), owner1.end(), int32_t{-1});
    for (int u : selected) {
      const CoverageGraph::EdgeLanes lanes = graph.ForwardLanesOf(u);
      for (size_t i = 0; i < lanes.size; ++i) {
        size_t w = static_cast<size_t>(lanes.endpoint[i]);
        const float d = lanes.distance[i];
        if (d < best1[w]) {
          best2[w] = best1[w];
          best1[w] = d;
          owner1[w] = u;
        } else if (d < best2[w]) {
          best2[w] = d;
        }
      }
    }
  }
};

}  // namespace

LocalSearchSummarizer::LocalSearchSummarizer(LocalSearchOptions options)
    : options_(options) {}

Result<SummaryResult> LocalSearchSummarizer::Summarize(
    const CoverageGraph& graph, int k, const ExecutionBudget& budget) {
  Stopwatch watch;
  // The frame opens before the greedy seed solve: greedy's own frame nests
  // inside it (LIFO) and rewinds first, leaving this solve's scratch
  // intact. Nothing arena-backed escapes into the result.
  Arena& arena = PerThreadSolveArena();
  ArenaFrame frame(arena);

  auto seed = greedy_.Summarize(graph, k, budget);
  OSRS_RETURN_IF_ERROR(seed.status());
  if (seed->approximate) {
    // The budget already ran out inside the greedy seed; polishing is off
    // the table, so hand the partial greedy incumbent through unchanged.
    return seed;
  }
  std::vector<int> selected = seed->selected;
  double cost = seed->cost;

  const size_t num_targets = static_cast<size_t>(graph.num_targets());
  const size_t num_candidates = static_cast<size_t>(graph.num_candidates());
  std::span<uint8_t> is_selected = arena.AllocateArray<uint8_t>(num_candidates);
  std::fill(is_selected.begin(), is_selected.end(), uint8_t{0});
  for (int u : selected) is_selected[static_cast<size_t>(u)] = 1;

  CoverageState state;
  state.Allocate(arena, num_targets);
  int64_t swaps_applied = 0;
  // Scratch: distance from the incoming candidate to each target (∞ when
  // not adjacent); reset sparsely between candidates.
  constexpr float kNotAdjacent = std::numeric_limits<float>::infinity();
  std::span<float> in_distance = arena.AllocateArray<float>(num_targets);
  std::fill(in_distance.begin(), in_distance.end(), kNotAdjacent);
  // Scratch for the exact post-swap cost recomputation.
  std::span<float> cost_scratch = arena.AllocateArray<float>(num_targets);

  // Non-OK once the budget fires mid-polish; the greedy-seeded solution in
  // `selected` stays valid at every point, so it becomes the incumbent.
  Status budget_status = Status::OK();

  for (int pass = 0;
       pass < options_.max_passes && budget_status.ok(); ++pass) {
    budget_status = budget.Check(swaps_applied);
    if (!budget_status.ok()) break;
    // One span per pass, so the trace's call count equals the number of
    // polish passes actually run.
    obs::TraceSpan pass_span(obs::Phase::kLocalSearchPasses);
    state.Rebuild(graph, selected);
    double best_delta = -options_.min_improvement;
    size_t best_out_pos = 0;
    int best_in = -1;

    for (int u_in = 0; u_in < graph.num_candidates(); ++u_in) {
      if (u_in % 64 == 0) {
        budget_status = budget.Check(swaps_applied);
        if (!budget_status.ok()) break;
      }
      if (is_selected[static_cast<size_t>(u_in)] != 0) continue;
      const CoverageGraph::EdgeLanes in_lanes = graph.ForwardLanesOf(u_in);
      for (size_t i = 0; i < in_lanes.size; ++i) {
        in_distance[static_cast<size_t>(in_lanes.endpoint[i])] =
            in_lanes.distance[i];
      }
      for (size_t out_pos = 0; out_pos < selected.size(); ++out_pos) {
        const int u_out = selected[out_pos];
        // Delta over targets adjacent to u_in or owned by u_out; all other
        // targets keep their current coverage.
        double delta = 0.0;
        for (size_t i = 0; i < in_lanes.size; ++i) {
          size_t w = static_cast<size_t>(in_lanes.endpoint[i]);
          double base = static_cast<double>(
              state.owner1[w] == u_out ? state.best2[w] : state.best1[w]);
          double now =
              std::min(base, static_cast<double>(in_lanes.distance[i]));
          delta += (now - static_cast<double>(state.best1[w])) *
                   graph.target_weight(in_lanes.endpoint[i]);
        }
        const CoverageGraph::EdgeLanes out_lanes = graph.ForwardLanesOf(u_out);
        for (size_t i = 0; i < out_lanes.size; ++i) {
          size_t w = static_cast<size_t>(out_lanes.endpoint[i]);
          if (state.owner1[w] != u_out) continue;
          if (in_distance[w] < kNotAdjacent) continue;  // counted above
          delta += (static_cast<double>(state.best2[w]) -
                    static_cast<double>(state.best1[w])) *
                   graph.target_weight(out_lanes.endpoint[i]);
        }
        if (delta < best_delta) {
          best_delta = delta;
          best_out_pos = out_pos;
          best_in = u_in;
        }
      }
      for (size_t i = 0; i < in_lanes.size; ++i) {
        in_distance[static_cast<size_t>(in_lanes.endpoint[i])] = kNotAdjacent;
      }
    }

    if (best_in < 0) break;  // local optimum
    is_selected[static_cast<size_t>(selected[best_out_pos])] = 0;
    is_selected[static_cast<size_t>(best_in)] = 1;
    selected[best_out_pos] = best_in;
    ++swaps_applied;
    // Exact recomputation (avoids delta drift), allocation-free.
    cost = graph.CostOfSelection(std::span<const int>(selected), cost_scratch);
  }

  obs::TraceStat(obs::Stat::kSwapsApplied, swaps_applied);
  if (!budget_status.ok()) {
    if (budget_status.code() == StatusCode::kCancelled) return budget_status;
    // Deadline/work trip mid-polish: the greedy-seeded selection is a valid
    // incumbent at every point, but the polish is incomplete.
  }
  SolvesCounter()->Increment();
  SummaryResult result;
  result.selected = std::move(selected);
  result.cost = cost;
  result.seconds = watch.ElapsedSeconds();
  result.work = swaps_applied;
  result.approximate = !budget_status.ok();
  result.stop_reason = budget_status.code();
  return result;
}

}  // namespace osrs
