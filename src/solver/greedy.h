#ifndef OSRS_SOLVER_GREEDY_H_
#define OSRS_SOLVER_GREEDY_H_

#include <string>

#include "solver/summarizer.h"

namespace osrs {

/// Tally of coverage-distance evaluations made while scoring candidates.
/// Passed by reference into the gain kernels (previously a raw int64_t*
/// out-param, which compiled fine when null and crashed at the first
/// edge); flushed to the kDistanceEvaluations trace stat once per phase.
struct EvalCounter {
  int64_t distance_evals = 0;
};

/// Options for the greedy summarizer.
struct GreedyOptions {
  /// Heap maintenance strategy. kEager is the paper's Algorithm 2: after a
  /// selection, the keys of every neighbor-of-neighbor are updated in place
  /// (O(d²) updates of O(log n) each). kLazy is the classical lazy-greedy
  /// optimization valid for submodular gains: keys go stale and are
  /// recomputed only when popped, accepted if still at least the next key.
  /// Both carry the same Theorem 4 guarantee and agree except on exact
  /// gain ties; kLazy often does less work (ablation A1 measures this).
  enum class Heap { kEager, kLazy };
  Heap heap = Heap::kEager;
};

/// Algorithm 2: start from F = {r}, repeatedly add the candidate with the
/// largest cost reduction δ(p, F) = C(F, P) − C(F ∪ {p}, P), k times.
///
/// By Wolsey's analysis (Theorem 4) the result costs at most opt_{k'}(P)
/// with k' = ⌊k / H(Δn)⌋; in practice it is within a few percent of the
/// true optimum (§5.2).
class GreedySummarizer : public Summarizer {
 public:
  explicit GreedySummarizer(GreedyOptions options = {});

  using Summarizer::Summarize;
  Result<SummaryResult> Summarize(const CoverageGraph& graph, int k,
                                  const ExecutionBudget& budget) override;

  std::string name() const override;

 private:
  Result<SummaryResult> SummarizeEager(const CoverageGraph& graph, int k,
                                       const ExecutionBudget& budget);
  Result<SummaryResult> SummarizeLazy(const CoverageGraph& graph, int k,
                                      const ExecutionBudget& budget);

  GreedyOptions options_;
};

}  // namespace osrs

#endif  // OSRS_SOLVER_GREEDY_H_
