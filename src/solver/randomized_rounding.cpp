#include "solver/randomized_rounding.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "solver/kmedian_model.h"

namespace osrs {
namespace {

obs::Counter* SolvesCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("osrs.rr.solves");
  return counter;
}

}  // namespace

RandomizedRoundingSummarizer::RandomizedRoundingSummarizer(
    RandomizedRoundingOptions options)
    : options_(options) {}

Result<SummaryResult> RandomizedRoundingSummarizer::Summarize(
    const CoverageGraph& graph, int k, const ExecutionBudget& budget) {
  if (k < 0 || k > graph.num_candidates()) {
    return Status::InvalidArgument(
        StrFormat("k=%d outside [0, %d]", k, graph.num_candidates()));
  }
  OSRS_RETURN_IF_ERROR(budget.Check());
  Stopwatch watch;
  KMedianModel model = BuildKMedianModel(graph, k, /*integral_x=*/false);
  RevisedSimplex simplex(options_.lp);
  LpSolution lp;
  {
    obs::TraceSpan lp_span(obs::Phase::kLpRelaxation);
    lp = simplex.Solve(model.problem,
                       budget.IsUnlimited() ? nullptr : &budget);
  }
  if (lp.status == LpStatus::kInterrupted) {
    // No fractional point yet, so there is nothing to round: surface the
    // budget's own verdict (deadline, cancellation, or work bound).
    Status cause = budget.Check(lp.iterations);
    return cause.ok()
               ? Status::ResourceExhausted("LP relaxation budget tripped")
               : cause;
  }
  if (lp.status == LpStatus::kError) {
    // Environmental failure (e.g. an injected "osrs.lp.pivot" failpoint):
    // propagate the underlying Status code, not a blanket kInternal.
    return lp.error;
  }
  if (lp.status != LpStatus::kOptimal) {
    return Status::Internal(StrFormat("k-median LP relaxation reported %s",
                                      LpStatusToString(lp.status)));
  }

  // Fractional opening weights q(p) ∝ x_p (Algorithm 1, line 2).
  std::vector<double> base_weights(model.x_vars.size());
  for (size_t u = 0; u < model.x_vars.size(); ++u) {
    double x = lp.values[static_cast<size_t>(model.x_vars[u])];
    base_weights[u] = x > 1e-12 ? x : 0.0;
  }

  obs::TraceSpan rounding_span(obs::Phase::kRoundingTrials);
  if (options_.strategy == RoundingStrategy::kTopK) {
    // Deterministic rounding: open the k largest fractional facilities.
    std::vector<int> order(base_weights.size());
    for (size_t u = 0; u < order.size(); ++u) order[u] = static_cast<int>(u);
    std::sort(order.begin(), order.end(), [&base_weights](int a, int b) {
      double wa = base_weights[static_cast<size_t>(a)];
      double wb = base_weights[static_cast<size_t>(b)];
      if (wa != wb) return wa > wb;
      return a < b;
    });
    SummaryResult result;
    result.selected.assign(order.begin(),
                           order.begin() + std::min<size_t>(
                                               static_cast<size_t>(k),
                                               order.size()));
    result.cost = graph.CostOfSelection(result.selected);
    result.seconds = watch.ElapsedSeconds();
    result.work = lp.iterations;
    obs::TraceStat(obs::Stat::kRoundingTrials, 1);
    SolvesCounter()->Increment();
    return result;
  }

  Rng rng(options_.seed);
  SummaryResult best;
  bool have_best = false;
  int64_t trials_done = 0;
  for (int trial = 0; trial < std::max(1, options_.trials); ++trial) {
    Status budget_status = budget.Check(lp.iterations + trial);
    if (!budget_status.ok()) {
      if (budget_status.code() == StatusCode::kCancelled || !have_best) {
        obs::TraceStat(obs::Stat::kRoundingTrials, trials_done);
        return budget_status;
      }
      // Keep the cheapest draw completed so far as the incumbent.
      best.approximate = true;
      best.stop_reason = budget_status.code();
      break;
    }
    std::vector<double> weights = base_weights;
    std::vector<int> selected;
    selected.reserve(static_cast<size_t>(k));
    // Sample without replacement (Algorithm 1, lines 4-6). If the LP opens
    // fewer than k candidates fractionally, the support runs dry; the
    // remaining slots are filled uniformly from the unchosen candidates,
    // which cannot increase the cost.
    for (int round = 0; round < k; ++round) {
      double total = 0.0;
      for (double w : weights) total += w;
      if (total <= 0.0) break;
      size_t pick = rng.NextDiscrete(weights);
      selected.push_back(static_cast<int>(pick));
      weights[pick] = 0.0;
    }
    if (static_cast<int>(selected.size()) < k) {
      std::vector<bool> chosen(model.x_vars.size(), false);
      for (int u : selected) chosen[static_cast<size_t>(u)] = true;
      std::vector<size_t> order = rng.SampleWithoutReplacement(
          model.x_vars.size(), model.x_vars.size());
      for (size_t u : order) {
        if (static_cast<int>(selected.size()) >= k) break;
        if (!chosen[u]) selected.push_back(static_cast<int>(u));
      }
    }
    double cost = graph.CostOfSelection(selected);
    ++trials_done;
    if (!have_best || cost < best.cost) {
      best.selected = std::move(selected);
      best.cost = cost;
      have_best = true;
    }
  }

  obs::TraceStat(obs::Stat::kRoundingTrials, trials_done);
  SolvesCounter()->Increment();
  best.seconds = watch.ElapsedSeconds();
  best.work = lp.iterations;
  return best;
}

}  // namespace osrs
