#include "solver/randomized_rounding.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "solver/kmedian_model.h"

namespace osrs {
namespace {

obs::Counter* SolvesCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("osrs.rr.solves");
  return counter;
}

}  // namespace

RandomizedRoundingSummarizer::RandomizedRoundingSummarizer(
    RandomizedRoundingOptions options)
    : options_(options) {}

Result<SummaryResult> RandomizedRoundingSummarizer::Summarize(
    const CoverageGraph& graph, int k, const ExecutionBudget& budget) {
  if (k < 0 || k > graph.num_candidates()) {
    return Status::InvalidArgument(
        StrFormat("k=%d outside [0, %d]", k, graph.num_candidates()));
  }
  OSRS_RETURN_IF_ERROR(budget.Check());
  Stopwatch watch;
  KMedianModel model = BuildKMedianModel(graph, k, /*integral_x=*/false);
  RevisedSimplex simplex(options_.lp);
  LpSolution lp;
  {
    obs::TraceSpan lp_span(obs::Phase::kLpRelaxation);
    lp = simplex.Solve(model.problem,
                       budget.IsUnlimited() ? nullptr : &budget);
  }
  if (lp.status == LpStatus::kInterrupted) {
    // No fractional point yet, so there is nothing to round: surface the
    // budget's own verdict (deadline, cancellation, or work bound).
    Status cause = budget.Check(lp.iterations);
    return cause.ok()
               ? Status::ResourceExhausted("LP relaxation budget tripped")
               : cause;
  }
  if (lp.status == LpStatus::kError) {
    // Environmental failure (e.g. an injected "osrs.lp.pivot" failpoint):
    // propagate the underlying Status code, not a blanket kInternal.
    return lp.error;
  }
  if (lp.status != LpStatus::kOptimal) {
    return Status::Internal(StrFormat("k-median LP relaxation reported %s",
                                      LpStatusToString(lp.status)));
  }

  // Per-solve scratch below (opening weights, per-trial draws, cost
  // scratch) is arena-backed; only the winning selection is copied out
  // into the result before the frame rewinds.
  Arena& arena = PerThreadSolveArena();
  ArenaFrame frame(arena);
  const size_t num_facilities = model.x_vars.size();

  // Fractional opening weights q(p) ∝ x_p (Algorithm 1, line 2).
  std::span<double> base_weights = arena.AllocateArray<double>(num_facilities);
  for (size_t u = 0; u < num_facilities; ++u) {
    double x = lp.values[static_cast<size_t>(model.x_vars[u])];
    base_weights[u] = x > 1e-12 ? x : 0.0;
  }
  std::span<float> cost_scratch = arena.AllocateArray<float>(
      static_cast<size_t>(graph.num_targets()));

  obs::TraceSpan rounding_span(obs::Phase::kRoundingTrials);
  if (options_.strategy == RoundingStrategy::kTopK) {
    // Deterministic rounding: open the k largest fractional facilities.
    std::span<int32_t> order = arena.AllocateArray<int32_t>(num_facilities);
    for (size_t u = 0; u < num_facilities; ++u)
      order[u] = static_cast<int32_t>(u);
    std::sort(order.begin(), order.end(), [&base_weights](int a, int b) {
      double wa = base_weights[static_cast<size_t>(a)];
      double wb = base_weights[static_cast<size_t>(b)];
      if (wa != wb) return wa > wb;
      return a < b;
    });
    SummaryResult result;
    result.selected.assign(order.begin(),
                           order.begin() + std::min<size_t>(
                                               static_cast<size_t>(k),
                                               order.size()));
    result.cost = graph.CostOfSelection(result.selected);
    result.seconds = watch.ElapsedSeconds();
    result.work = lp.iterations;
    obs::TraceStat(obs::Stat::kRoundingTrials, 1);
    SolvesCounter()->Increment();
    return result;
  }

  Rng rng(options_.seed);
  SummaryResult best;
  bool have_best = false;
  int64_t trials_done = 0;
  // Trial scratch, reused across every draw (copied / reset in place —
  // the former per-trial vector copies were the dominant allocation churn
  // of a rounding solve).
  std::span<double> weights = arena.AllocateArray<double>(num_facilities);
  std::span<int32_t> selected =
      arena.AllocateArray<int32_t>(static_cast<size_t>(k));
  std::span<uint8_t> chosen = arena.AllocateArray<uint8_t>(num_facilities);
  for (int trial = 0; trial < std::max(1, options_.trials); ++trial) {
    Status budget_status = budget.Check(lp.iterations + trial);
    if (!budget_status.ok()) {
      if (budget_status.code() == StatusCode::kCancelled || !have_best) {
        obs::TraceStat(obs::Stat::kRoundingTrials, trials_done);
        return budget_status;
      }
      // Keep the cheapest draw completed so far as the incumbent.
      best.approximate = true;
      best.stop_reason = budget_status.code();
      break;
    }
    std::copy(base_weights.begin(), base_weights.end(), weights.begin());
    size_t num_selected = 0;
    // Sample without replacement (Algorithm 1, lines 4-6). If the LP opens
    // fewer than k candidates fractionally, the support runs dry; the
    // remaining slots are filled uniformly from the unchosen candidates,
    // which cannot increase the cost.
    for (int round = 0; round < k; ++round) {
      double total = 0.0;
      for (double w : weights) total += w;
      if (total <= 0.0) break;
      size_t pick = rng.NextDiscrete(std::span<const double>(weights));
      selected[num_selected++] = static_cast<int32_t>(pick);
      weights[pick] = 0.0;
    }
    if (static_cast<int>(num_selected) < k) {
      std::fill(chosen.begin(), chosen.end(), uint8_t{0});
      for (size_t s = 0; s < num_selected; ++s) {
        chosen[static_cast<size_t>(selected[s])] = 1;
      }
      auto uniform_order =
          rng.SampleWithoutReplacement(num_facilities, num_facilities);
      for (size_t u : uniform_order) {
        if (static_cast<int>(num_selected) >= k) break;
        if (chosen[u] == 0) selected[num_selected++] = static_cast<int32_t>(u);
      }
    }
    double cost = graph.CostOfSelection(
        std::span<const int32_t>(selected.data(), num_selected),
        cost_scratch);
    ++trials_done;
    if (!have_best || cost < best.cost) {
      best.selected.assign(selected.begin(),
                           selected.begin() +
                               static_cast<std::ptrdiff_t>(num_selected));
      best.cost = cost;
      have_best = true;
    }
  }

  obs::TraceStat(obs::Stat::kRoundingTrials, trials_done);
  SolvesCounter()->Increment();
  best.seconds = watch.ElapsedSeconds();
  best.work = lp.iterations;
  return best;
}

}  // namespace osrs
