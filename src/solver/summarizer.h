#ifndef OSRS_SOLVER_SUMMARIZER_H_
#define OSRS_SOLVER_SUMMARIZER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "coverage/coverage_graph.h"

namespace osrs {

/// Output of one summarization run over a coverage graph.
struct SummaryResult {
  /// Selected candidate indices (into the graph's U side), in selection
  /// order where the algorithm has one.
  std::vector<int> selected;
  /// Definition 2 cost of the selection.
  double cost = 0.0;
  /// Wall-clock seconds spent inside Summarize (excludes graph building).
  double seconds = 0.0;
  /// Solver-specific diagnostics (LP iterations, B&B nodes, ...); 0 when
  /// not applicable.
  int64_t work = 0;
};

/// Common interface of the paper's three algorithms (§4) and the exact
/// reference solver. Implementations are stateless across calls unless
/// documented otherwise and may be reused for many graphs.
class Summarizer {
 public:
  virtual ~Summarizer() = default;

  /// Selects (up to) k of the graph's candidates minimizing the coverage
  /// cost. Fails with InvalidArgument when k < 0 or k > |U|.
  virtual Result<SummaryResult> Summarize(const CoverageGraph& graph,
                                          int k) = 0;

  /// Short display name, e.g. "Greedy", "ILP", "RR".
  virtual std::string name() const = 0;
};

}  // namespace osrs

#endif  // OSRS_SOLVER_SUMMARIZER_H_
