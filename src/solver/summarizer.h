#ifndef OSRS_SOLVER_SUMMARIZER_H_
#define OSRS_SOLVER_SUMMARIZER_H_

#include <string>
#include <vector>

#include "common/execution_budget.h"
#include "common/status.h"
#include "coverage/coverage_graph.h"

namespace osrs {

/// Output of one summarization run over a coverage graph.
struct SummaryResult {
  /// Selected candidate indices (into the graph's U side), in selection
  /// order where the algorithm has one.
  std::vector<int> selected;
  /// Definition 2 cost of the selection.
  double cost = 0.0;
  /// Wall-clock seconds spent inside Summarize (excludes graph building).
  double seconds = 0.0;
  /// Solver-specific diagnostics (LP iterations, B&B nodes, ...); 0 when
  /// not applicable. This is the counter the ExecutionBudget work bound is
  /// compared against.
  int64_t work = 0;
  /// True when the ExecutionBudget ran out mid-solve and the result is the
  /// best incumbent found so far (possibly with fewer than k selections)
  /// rather than the algorithm's full answer.
  bool approximate = false;
  /// Why the solve stopped early (kDeadlineExceeded or kResourceExhausted)
  /// when `approximate` is set; kOk for a complete run. Cancellation never
  /// yields a result — it surfaces as a kCancelled Status instead.
  StatusCode stop_reason = StatusCode::kOk;
};

/// Common interface of the paper's three algorithms (§4) and the exact
/// reference solver. Implementations are stateless across calls unless
/// documented otherwise and may be reused for many graphs.
///
/// Budget contract (every implementation): the ExecutionBudget is polled
/// at least once per outer loop round and every few dozen inner-loop
/// steps, so a cancellation flag set mid-solve stops the solve within one
/// check interval. On a tripped budget the solver returns either a
/// well-formed error Status (always kCancelled for cancellation) or, when
/// it holds a meaningful incumbent, that incumbent with
/// `SummaryResult::approximate` set and `stop_reason` recording the cause.
class Summarizer {
 public:
  virtual ~Summarizer() = default;

  /// Selects (up to) k of the graph's candidates minimizing the coverage
  /// cost. Fails with InvalidArgument when k < 0 or k > |U|.
  Result<SummaryResult> Summarize(const CoverageGraph& graph, int k) {
    return Summarize(graph, k, ExecutionBudget::Unlimited());
  }

  /// As above, stopping cooperatively when `budget` runs out (see the
  /// budget contract in the class comment).
  virtual Result<SummaryResult> Summarize(const CoverageGraph& graph, int k,
                                          const ExecutionBudget& budget) = 0;

  /// Short display name, e.g. "Greedy", "ILP", "RR".
  virtual std::string name() const = 0;
};

}  // namespace osrs

#endif  // OSRS_SOLVER_SUMMARIZER_H_
