#include "solver/exhaustive.h"

#include <algorithm>
#include <vector>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace osrs {
namespace {

obs::Counter* SolvesCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("osrs.exhaustive.solves");
  return counter;
}

/// C(n, k) with saturation at limit+1 to avoid overflow.
int64_t BinomialCapped(int n, int k, int64_t limit) {
  if (k < 0 || k > n) return 0;
  k = std::min(k, n - k);
  int64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    result = result * (n - k + i) / i;
    if (result > limit) return limit + 1;
  }
  return result;
}

}  // namespace

ExhaustiveSummarizer::ExhaustiveSummarizer(int64_t max_subsets)
    : max_subsets_(max_subsets) {}

Result<SummaryResult> ExhaustiveSummarizer::Summarize(
    const CoverageGraph& graph, int k, const ExecutionBudget& budget) {
  const int n = graph.num_candidates();
  if (k < 0 || k > n) {
    return Status::InvalidArgument(StrFormat("k=%d outside [0, %d]", k, n));
  }
  int64_t subsets = BinomialCapped(n, k, max_subsets_);
  if (subsets > max_subsets_) {
    return Status::ResourceExhausted(
        StrFormat("C(%d, %d) exceeds the %lld-subset budget", n, k,
                  static_cast<long long>(max_subsets_)));
  }

  OSRS_RETURN_IF_ERROR(budget.Check());
  Stopwatch watch;
  SummaryResult result;
  result.cost = graph.EmptySummaryCost();

  std::vector<int> combo(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) combo[static_cast<size_t>(i)] = i;
  std::vector<int> best_combo = combo;
  double best_cost = k == 0 ? result.cost : graph.CostOfSelection(combo);
  int64_t evaluated = k == 0 ? 0 : 1;

  // Lexicographic enumeration of k-combinations of [0, n).
  obs::TraceSpan enum_span(obs::Phase::kExhaustiveEnumeration);
  constexpr int64_t kBudgetCheckPeriod = 1024;
  while (k > 0) {
    if (evaluated % kBudgetCheckPeriod == 0) {
      // Exact-or-error: a partial enumeration proves nothing, so the oracle
      // reports the budget verdict instead of a bogus "optimum".
      Status budget_status = budget.Check(evaluated);
      if (!budget_status.ok()) {
        obs::TraceStat(obs::Stat::kSubsetsEvaluated, evaluated);
        return budget_status;
      }
    }
    int i = k - 1;
    while (i >= 0 &&
           combo[static_cast<size_t>(i)] == n - k + i) {
      --i;
    }
    if (i < 0) break;
    ++combo[static_cast<size_t>(i)];
    for (int j = i + 1; j < k; ++j) {
      combo[static_cast<size_t>(j)] = combo[static_cast<size_t>(j - 1)] + 1;
    }
    double cost = graph.CostOfSelection(combo);
    ++evaluated;
    if (cost < best_cost) {
      best_cost = cost;
      best_combo = combo;
    }
  }

  obs::TraceStat(obs::Stat::kSubsetsEvaluated, evaluated);
  SolvesCounter()->Increment();
  result.selected = best_combo;
  if (k == 0) result.selected.clear();
  result.cost = k == 0 ? graph.EmptySummaryCost() : best_cost;
  result.seconds = watch.ElapsedSeconds();
  result.work = evaluated;
  return result;
}

}  // namespace osrs
