#ifndef OSRS_SOLVER_KMEDIAN_MODEL_H_
#define OSRS_SOLVER_KMEDIAN_MODEL_H_

#include <vector>

#include "coverage/coverage_graph.h"
#include "lp/lp_problem.h"

namespace osrs {

/// The §4.2 k-median (I)LP built from a coverage graph.
struct KMedianModel {
  LpProblem problem;
  /// problem variable index of x_u for each candidate u (|U| entries).
  std::vector<int> x_vars;
  /// True when every edge weight (and root distance) is integral, so every
  /// integral solution has an integral objective (enables MIP pruning).
  bool integral_costs = true;
};

/// Builds the model
///
///   min  Σ_(u,w)∈E d(u,w)·y_uw + Σ_w d(r,w)·y_rw
///   s.t. Σ_u y_uw + y_rw = 1          for every target w
///        y_uw ≤ x_u                   for every edge (u,w)
///        Σ_u x_u ≤ k
///        x ∈ [0,1] (integral iff integral_x), y ≥ 0
///
/// This matches the paper's ILP after two harmless rewrites: x_r = 1 is
/// substituted away (y_rw then has no linking row, only the implied bound
/// y_rw ≤ 1), and Σ x = k is relaxed to ≤ k, which preserves the optimum
/// because the coverage cost is monotone non-increasing in the open set.
/// Edges at least as expensive as the root assignment are pruned: they can
/// never improve the objective.
KMedianModel BuildKMedianModel(const CoverageGraph& graph, int k,
                               bool integral_x);

}  // namespace osrs

#endif  // OSRS_SOLVER_KMEDIAN_MODEL_H_
