#ifndef OSRS_SOLVER_RANDOMIZED_ROUNDING_H_
#define OSRS_SOLVER_RANDOMIZED_ROUNDING_H_

#include <cstdint>
#include <string>

#include "lp/simplex.h"
#include "solver/summarizer.h"

namespace osrs {

/// How the fractional LP solution is turned into k representatives.
enum class RoundingStrategy {
  /// Algorithm 1: sample k candidates without replacement from x/‖x‖₁.
  kSample,
  /// Deterministic variant: take the k largest x values (ties to the
  /// smaller index). No Theorem 3 guarantee, but reproducible and often a
  /// touch cheaper in cost; compared in the extensions bench.
  kTopK,
};

/// Options for the randomized-rounding summarizer.
struct RandomizedRoundingOptions {
  SimplexOptions lp;
  uint64_t seed = 7;
  /// Number of independent rounding draws; the cheapest is kept. The paper
  /// uses a single draw (Algorithm 1); more draws trade time for cost.
  int trials = 1;
  RoundingStrategy strategy = RoundingStrategy::kSample;
};

/// Algorithm 1 (§4.3): solve the LP relaxation of the k-median ILP, then
/// sample k candidates without replacement from the distribution
/// q(p) = x_p / ‖x‖₁ given by the fractional opening variables.
///
/// Carries the Theorem 3 guarantee: expected cost O(opt_{k'}(P)) for
/// k' = O(k / log n); in practice within 1-2% of optimal (§5.2).
class RandomizedRoundingSummarizer : public Summarizer {
 public:
  explicit RandomizedRoundingSummarizer(RandomizedRoundingOptions options = {});

  using Summarizer::Summarize;
  Result<SummaryResult> Summarize(const CoverageGraph& graph, int k,
                                  const ExecutionBudget& budget) override;

  std::string name() const override {
    return options_.strategy == RoundingStrategy::kSample ? "RR" : "LP-top-k";
  }

 private:
  RandomizedRoundingOptions options_;
};

}  // namespace osrs

#endif  // OSRS_SOLVER_RANDOMIZED_ROUNDING_H_
