#include "solver/kmedian_model.h"

#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace osrs {

KMedianModel BuildKMedianModel(const CoverageGraph& graph, int k,
                               bool integral_x) {
  KMedianModel model;
  LpProblem& lp = model.problem;

  auto note_cost = [&model](double c) {
    if (std::abs(c - std::round(c)) > 1e-12) model.integral_costs = false;
  };

  // Facility-opening variables x_u.
  model.x_vars.reserve(static_cast<size_t>(graph.num_candidates()));
  for (int u = 0; u < graph.num_candidates(); ++u) {
    model.x_vars.push_back(
        lp.AddVariable(0.0, 1.0, 0.0, integral_x, StrFormat("x_%d", u)));
  }

  // Cardinality row Σ x_u <= k.
  {
    std::vector<std::pair<int, double>> terms;
    terms.reserve(model.x_vars.size());
    for (int xv : model.x_vars) terms.emplace_back(xv, 1.0);
    OSRS_CHECK(lp.AddConstraint(std::move(terms), ConstraintSense::kLessEqual,
                                static_cast<double>(k))
                   .ok());
  }

  // Per-target assignment rows, with root assignment always available, and
  // the linking rows y_uw <= x_u for the useful edges.
  for (int w = 0; w < graph.num_targets(); ++w) {
    const double root_cost = graph.root_distance(w);
    const double target_weight = graph.target_weight(w);
    note_cost(root_cost * target_weight);
    int y_root = lp.AddVariable(0.0, 1.0, root_cost * target_weight, false,
                                StrFormat("yroot_%d", w));
    std::vector<std::pair<int, double>> assignment{{y_root, 1.0}};
    const CoverageGraph::EdgeLanes lanes = graph.BackwardLanesOf(w);
    for (size_t i = 0; i < lanes.size; ++i) {
      const double distance = static_cast<double>(lanes.distance[i]);
      if (distance >= root_cost) continue;  // dominated by the root
      const int32_t u = lanes.endpoint[i];
      note_cost(distance * target_weight);
      int y = lp.AddVariable(0.0, kLpInfinity, distance * target_weight,
                             false, StrFormat("y_%d_%d", u, w));
      assignment.emplace_back(y, 1.0);
      OSRS_CHECK(lp.AddConstraint(
                       {{y, 1.0},
                        {model.x_vars[static_cast<size_t>(u)], -1.0}},
                       ConstraintSense::kLessEqual, 0.0)
                     .ok());
    }
    OSRS_CHECK(lp.AddConstraint(std::move(assignment),
                                ConstraintSense::kEqual, 1.0)
                   .ok());
  }

  return model;
}

}  // namespace osrs
