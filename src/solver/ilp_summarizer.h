#ifndef OSRS_SOLVER_ILP_SUMMARIZER_H_
#define OSRS_SOLVER_ILP_SUMMARIZER_H_

#include <string>

#include "lp/mip.h"
#include "solver/summarizer.h"

namespace osrs {

/// The paper's exact algorithm (§4.2): solve the k-median ILP. The paper
/// uses Gurobi; here the bundled branch-and-bound MipSolver plays that role
/// (see DESIGN.md's substitution table). Returns the provably optimal
/// selection; fails with ResourceExhausted when the node budget runs out
/// before optimality is proven. Under an ExecutionBudget the search stops
/// cooperatively: if an incumbent exists it is returned flagged
/// approximate, otherwise the budget's Status (kDeadlineExceeded /
/// kCancelled / kResourceExhausted) comes back.
class IlpSummarizer : public Summarizer {
 public:
  explicit IlpSummarizer(MipOptions options = {});

  using Summarizer::Summarize;
  Result<SummaryResult> Summarize(const CoverageGraph& graph, int k,
                                  const ExecutionBudget& budget) override;

  std::string name() const override { return "ILP"; }

 private:
  MipOptions options_;
};

}  // namespace osrs

#endif  // OSRS_SOLVER_ILP_SUMMARIZER_H_
