#include "solver/ilp_summarizer.h"

#include <utility>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "solver/kmedian_model.h"

namespace osrs {
namespace {

obs::Counter* SolvesCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("osrs.ilp.solves");
  return counter;
}

}  // namespace

IlpSummarizer::IlpSummarizer(MipOptions options) : options_(options) {}

Result<SummaryResult> IlpSummarizer::Summarize(const CoverageGraph& graph,
                                               int k,
                                               const ExecutionBudget& budget) {
  if (k < 0 || k > graph.num_candidates()) {
    return Status::InvalidArgument(
        StrFormat("k=%d outside [0, %d]", k, graph.num_candidates()));
  }
  OSRS_RETURN_IF_ERROR(budget.Check());
  Stopwatch watch;
  KMedianModel model = BuildKMedianModel(graph, k, /*integral_x=*/true);
  MipOptions options = options_;
  options.objective_is_integral = model.integral_costs;
  MipSolver solver(options);
  MipSolution mip = solver.Solve(std::move(model.problem),
                                 budget.IsUnlimited() ? nullptr : &budget);

  if (mip.status == LpStatus::kError) {
    // Environmental failure inside an LP sub-solve (e.g. an injected
    // "osrs.lp.pivot" failpoint): propagate the underlying Status so the
    // caller's retry/fallback machinery sees the true code.
    return mip.error;
  }
  if (mip.status == LpStatus::kInfeasible || mip.status == LpStatus::kUnbounded) {
    return Status::Internal(StrFormat("k-median ILP reported %s",
                                      LpStatusToString(mip.status)));
  }
  bool approximate = false;
  StatusCode stop_reason = StatusCode::kOk;
  if (mip.status == LpStatus::kInterrupted) {
    Status cause = budget.Check(mip.nodes);
    if (cause.code() == StatusCode::kCancelled) return cause;
    if (!mip.has_incumbent) {
      return cause.ok() ? Status::ResourceExhausted(
                              "execution budget tripped with no incumbent")
                        : cause;
    }
    approximate = true;
    stop_reason = cause.ok() ? StatusCode::kResourceExhausted : cause.code();
  }
  if (!mip.has_incumbent) {
    return Status::ResourceExhausted(
        "branch-and-bound budget exhausted with no incumbent");
  }
  if (mip.status == LpStatus::kIterationLimit) {
    return Status::ResourceExhausted(StrFormat(
        "branch-and-bound budget exhausted after %lld nodes (incumbent %g)",
        static_cast<long long>(mip.nodes), mip.objective));
  }

  SummaryResult result;
  result.approximate = approximate;
  result.stop_reason = stop_reason;
  for (size_t u = 0; u < model.x_vars.size(); ++u) {
    if (mip.values[static_cast<size_t>(model.x_vars[u])] > 0.5) {
      result.selected.push_back(static_cast<int>(u));
    }
  }
  result.cost = graph.CostOfSelection(result.selected);
  result.seconds = watch.ElapsedSeconds();
  result.work = mip.nodes;
  SolvesCounter()->Increment();
  return result;
}

}  // namespace osrs
