#ifndef OSRS_SOLVER_EXHAUSTIVE_H_
#define OSRS_SOLVER_EXHAUSTIVE_H_

#include <string>

#include "solver/summarizer.h"

namespace osrs {

/// Exact solver by enumeration of all C(|U|, k) candidate subsets.
///
/// Exponential — intended only as the ground-truth oracle in tests and for
/// the NP-hardness reduction experiments on tiny instances. Refuses
/// instances whose subset count exceeds `max_subsets`.
///
/// Because the enumerator is the exact oracle, it never degrades: a tripped
/// execution budget surfaces as an error Status (kCancelled,
/// kDeadlineExceeded, or kResourceExhausted), never as an approximate
/// incumbent masquerading as the optimum.
class ExhaustiveSummarizer : public Summarizer {
 public:
  explicit ExhaustiveSummarizer(int64_t max_subsets = 20'000'000);

  using Summarizer::Summarize;
  Result<SummaryResult> Summarize(const CoverageGraph& graph, int k,
                                  const ExecutionBudget& budget) override;

  std::string name() const override { return "Exhaustive"; }

 private:
  int64_t max_subsets_;
};

}  // namespace osrs

#endif  // OSRS_SOLVER_EXHAUSTIVE_H_
