#ifndef OSRS_SOLVER_LOCAL_SEARCH_H_
#define OSRS_SOLVER_LOCAL_SEARCH_H_

#include <string>

#include "solver/greedy.h"
#include "solver/summarizer.h"

namespace osrs {

/// Options of the swap local search.
struct LocalSearchOptions {
  /// Upper bound on improvement passes (each pass applies the single best
  /// swap found; the search also stops at a local optimum).
  int max_passes = 64;
  /// A swap must improve the cost by more than this to be applied.
  double min_improvement = 1e-9;
};

/// Single-swap local search over the coverage objective — an extension
/// beyond the paper's three algorithms (§4), included because swap search
/// is the classical companion of greedy for k-median-style objectives
/// (Arya et al.'s 5-approximation for metric k-median; our objective is a
/// k-median variant with an asymmetric distance and root fallback, so the
/// metric guarantee does not transfer — here it serves as a high-quality
/// polish pass).
///
/// The search seeds with the greedy solution, then repeatedly applies the
/// best cost-improving swap (selected candidate out, unselected candidate
/// in) until none exists. Each pass evaluates all k·(|U|-k) swaps in
/// O(k·|U|·davg) using first/second-best coverage bookkeeping.
class LocalSearchSummarizer : public Summarizer {
 public:
  explicit LocalSearchSummarizer(LocalSearchOptions options = {});

  using Summarizer::Summarize;
  Result<SummaryResult> Summarize(const CoverageGraph& graph, int k,
                                  const ExecutionBudget& budget) override;

  std::string name() const override { return "Greedy+swap"; }

 private:
  LocalSearchOptions options_;
  GreedySummarizer greedy_;
};

}  // namespace osrs

#endif  // OSRS_SOLVER_LOCAL_SEARCH_H_
