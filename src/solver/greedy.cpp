#include "solver/greedy.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/indexed_heap.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace osrs {
namespace {

/// Marginal gain of adding candidate u when each target w is currently
/// covered at distance best[w]: Σ_w max(0, best[w] - d(u, w)). Each edge
/// scanned is one coverage-distance evaluation, tallied in *evals (a local
/// accumulator flushed to the trace once per phase).
double GainOf(const CoverageGraph& graph, const std::vector<double>& best,
              int u, int64_t* evals) {
  double gain = 0.0;
  const auto edges = graph.EdgesOf(u);
  *evals += static_cast<int64_t>(edges.size());
  for (const CoverageGraph::Edge& e : edges) {
    double improvement = best[static_cast<size_t>(e.endpoint)] - e.weight;
    if (improvement > 0.0) gain += improvement * graph.target_weight(e.endpoint);
  }
  return gain;
}

obs::Counter* SolvesCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("osrs.greedy.solves");
  return counter;
}

Status ValidateK(const CoverageGraph& graph, int k) {
  if (k < 0 || k > graph.num_candidates()) {
    return Status::InvalidArgument(
        StrFormat("k=%d outside [0, %d]", k, graph.num_candidates()));
  }
  return Status::OK();
}

/// Candidates between budget polls while scanning the initial gains.
constexpr int kInitCheckPeriod = 256;

}  // namespace

GreedySummarizer::GreedySummarizer(GreedyOptions options)
    : options_(options) {}

std::string GreedySummarizer::name() const {
  return options_.heap == GreedyOptions::Heap::kEager ? "Greedy"
                                                      : "Greedy(lazy)";
}

Result<SummaryResult> GreedySummarizer::Summarize(
    const CoverageGraph& graph, int k, const ExecutionBudget& budget) {
  OSRS_RETURN_IF_ERROR(ValidateK(graph, k));
  return options_.heap == GreedyOptions::Heap::kEager
             ? SummarizeEager(graph, k, budget)
             : SummarizeLazy(graph, k, budget);
}

Result<SummaryResult> GreedySummarizer::SummarizeEager(
    const CoverageGraph& graph, int k, const ExecutionBudget& budget) {
  Stopwatch watch;
  const int num_targets = graph.num_targets();
  std::vector<double> best(static_cast<size_t>(num_targets));
  for (int w = 0; w < num_targets; ++w) {
    best[static_cast<size_t>(w)] = graph.root_distance(w);
  }

  // Initialize the max-heap with δ(p, {r}) for every candidate. Before any
  // selection there is no incumbent, so a tripped budget here is a plain
  // error.
  int64_t distance_evals = 0;
  std::vector<double> initial_gain(
      static_cast<size_t>(graph.num_candidates()));
  {
    obs::TraceSpan init_span(obs::Phase::kHeapInit);
    for (int u = 0; u < graph.num_candidates(); ++u) {
      if (u % kInitCheckPeriod == 0) {
        Status init_status = budget.Check();
        if (!init_status.ok()) {
          obs::TraceStat(obs::Stat::kDistanceEvaluations, distance_evals);
          return init_status;
        }
      }
      initial_gain[static_cast<size_t>(u)] =
          GainOf(graph, best, u, &distance_evals);
    }
  }
  obs::TraceStat(obs::Stat::kCandidatesConsidered, graph.num_candidates());
  IndexedMaxHeap heap(std::move(initial_gain));

  SummaryResult result;
  result.cost = graph.EmptySummaryCost();
  int64_t key_updates = 0;
  int64_t heap_pops = 0;

  // Accumulates per-candidate key deltas across all targets improved by one
  // selection, so each affected candidate gets a single heap update.
  std::unordered_map<int, double> pending_delta;

  obs::TraceSpan select_span(obs::Phase::kGreedyIterations);
  for (int round = 0; round < k && !heap.empty(); ++round) {
    // Injected failures abort the solve with the injected Status — the
    // facade's fallback chain then decides what (if anything) runs next.
    OSRS_RETURN_IF_ERROR(OSRS_FAILPOINT("osrs.solver.step"));
    Status budget_status = budget.Check(key_updates);
    if (!budget_status.ok()) {
      if (budget_status.code() == StatusCode::kCancelled) {
        return budget_status;
      }
      // The partial selection is a valid (smaller) summary: return it as
      // the incumbent instead of discarding the rounds already done.
      result.approximate = true;
      result.stop_reason = budget_status.code();
      break;
    }
    int chosen = heap.PopMax();
    ++heap_pops;
    result.selected.push_back(chosen);
    pending_delta.clear();

    // Apply the selection: improve best[] along chosen's edges, and record
    // how the improvement shrinks the gains of other coverers of those
    // targets (the neighbor-of-neighbor updates of Algorithm 2, lines 7-9).
    distance_evals += static_cast<int64_t>(graph.EdgesOf(chosen).size());
    for (const CoverageGraph::Edge& e : graph.EdgesOf(chosen)) {
      double& current = best[static_cast<size_t>(e.endpoint)];
      if (e.weight >= current) continue;
      const double old_best = current;
      const double new_best = e.weight;
      const double target_weight = graph.target_weight(e.endpoint);
      current = new_best;
      result.cost -= (old_best - new_best) * target_weight;
      for (const CoverageGraph::Edge& back :
           graph.CoveringOf(e.endpoint)) {
        if (!heap.Contains(back.endpoint)) continue;
        double before = std::max(0.0, old_best - back.weight);
        double after = std::max(0.0, new_best - back.weight);
        if (before != after) {
          pending_delta[back.endpoint] += (before - after) * target_weight;
        }
      }
    }
    for (const auto& [candidate, delta] : pending_delta) {
      heap.UpdateKey(candidate, heap.KeyOf(candidate) - delta);
      ++key_updates;
    }
  }

  obs::TraceStat(obs::Stat::kHeapPops, heap_pops);
  obs::TraceStat(obs::Stat::kKeyUpdates, key_updates);
  obs::TraceStat(obs::Stat::kDistanceEvaluations, distance_evals);
  SolvesCounter()->Increment();
  result.seconds = watch.ElapsedSeconds();
  result.work = key_updates;
  return result;
}

Result<SummaryResult> GreedySummarizer::SummarizeLazy(
    const CoverageGraph& graph, int k, const ExecutionBudget& budget) {
  Stopwatch watch;
  const int num_targets = graph.num_targets();
  std::vector<double> best(static_cast<size_t>(num_targets));
  for (int w = 0; w < num_targets; ++w) {
    best[static_cast<size_t>(w)] = graph.root_distance(w);
  }

  // Max-heap of (possibly stale gain, candidate). Staleness is safe because
  // the gain is monotone non-increasing as F grows (submodularity): a
  // recomputed gain still at the top is exactly the true maximum.
  using Entry = std::pair<double, int>;
  auto cmp = [](const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;  // smaller id wins ties, like the eager heap
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  std::vector<bool> selected_flag(
      static_cast<size_t>(graph.num_candidates()), false);
  int64_t distance_evals = 0;
  {
    obs::TraceSpan init_span(obs::Phase::kHeapInit);
    for (int u = 0; u < graph.num_candidates(); ++u) {
      if (u % kInitCheckPeriod == 0) {
        Status init_status = budget.Check();
        if (!init_status.ok()) {
          obs::TraceStat(obs::Stat::kDistanceEvaluations, distance_evals);
          return init_status;
        }
      }
      heap.push({GainOf(graph, best, u, &distance_evals), u});
    }
  }
  obs::TraceStat(obs::Stat::kCandidatesConsidered, graph.num_candidates());

  SummaryResult result;
  result.cost = graph.EmptySummaryCost();
  int64_t recomputes = 0;
  int64_t heap_pops = 0;

  obs::TraceSpan select_span(obs::Phase::kGreedyIterations);
  for (int round = 0; round < k && !heap.empty(); ++round) {
    OSRS_RETURN_IF_ERROR(OSRS_FAILPOINT("osrs.solver.step"));
    Status budget_status = budget.Check(recomputes);
    if (!budget_status.ok()) {
      if (budget_status.code() == StatusCode::kCancelled) {
        return budget_status;
      }
      result.approximate = true;
      result.stop_reason = budget_status.code();
      break;
    }
    while (true) {
      const int u = heap.top().second;
      heap.pop();
      ++heap_pops;
      if (selected_flag[static_cast<size_t>(u)]) continue;
      double fresh = GainOf(graph, best, u, &distance_evals);
      ++recomputes;
      if (heap.empty() || fresh >= heap.top().first) {
        selected_flag[static_cast<size_t>(u)] = true;
        result.selected.push_back(u);
        distance_evals += static_cast<int64_t>(graph.EdgesOf(u).size());
        for (const CoverageGraph::Edge& e : graph.EdgesOf(u)) {
          double& current = best[static_cast<size_t>(e.endpoint)];
          if (e.weight < current) {
            result.cost -=
                (current - e.weight) * graph.target_weight(e.endpoint);
            current = e.weight;
          }
        }
        break;
      }
      heap.push({fresh, u});
    }
  }

  obs::TraceStat(obs::Stat::kHeapPops, heap_pops);
  obs::TraceStat(obs::Stat::kGainRecomputes, recomputes);
  obs::TraceStat(obs::Stat::kDistanceEvaluations, distance_evals);
  SolvesCounter()->Increment();
  result.seconds = watch.ElapsedSeconds();
  result.work = recomputes;
  return result;
}

}  // namespace osrs
