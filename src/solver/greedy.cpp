#include "solver/greedy.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/arena.h"
#include "common/indexed_heap.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace osrs {
namespace {

/// Marginal gain of adding candidate u when each target w is currently
/// covered at distance best[w]: Σ_w max(0, best[w] - d(u, w)), streamed
/// through the dispatched SIMD kernel over u's SoA row. Each edge scanned
/// is one coverage-distance evaluation, tallied in `evals` (a reference —
/// the former int64_t* out-param accepted null and crashed at the first
/// edge) and flushed to the trace once per phase.
double GainOf(const CoverageGraph& graph, const float* best, int u,
              EvalCounter& evals) {
  OSRS_DCHECK(std::addressof(evals) != nullptr);
  const CoverageGraph::EdgeLanes lanes = graph.ForwardLanesOf(u);
  evals.distance_evals += static_cast<int64_t>(lanes.size);
  return simd::GainReduce(lanes.endpoint, lanes.distance, lanes.size, best,
                          graph.target_weights_or_null());
}

obs::Counter* SolvesCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("osrs.greedy.solves");
  return counter;
}

Status ValidateK(const CoverageGraph& graph, int k) {
  if (k < 0 || k > graph.num_candidates()) {
    return Status::InvalidArgument(
        StrFormat("k=%d outside [0, %d]", k, graph.num_candidates()));
  }
  return Status::OK();
}

/// Candidates between budget polls while scanning the initial gains.
constexpr int kInitCheckPeriod = 256;

/// Max-heap of (possibly stale gain, candidate) entries for the lazy
/// strategy, over arena storage. Entries carry a strict total order (gain
/// descending, id ascending — each live candidate has at most one entry),
/// so the pop sequence is uniquely determined and implementation-
/// independent; this matches the std::priority_queue it replaces exactly.
class LazyMaxHeap {
 public:
  struct Entry {
    double gain;
    int32_t id;
  };

  LazyMaxHeap(size_t capacity, Arena& arena)
      : entries_(arena.AllocateArray<Entry>(capacity)) {}

  bool empty() const { return size_ == 0; }
  const Entry& Top() const {
    OSRS_DCHECK(size_ > 0);
    return entries_[0];
  }
  void Push(Entry entry) {
    OSRS_DCHECK(size_ < entries_.size());
    size_t pos = size_++;
    entries_[pos] = entry;
    while (pos > 0) {
      size_t parent = (pos - 1) / 2;
      if (!Precedes(entries_[pos], entries_[parent])) break;
      std::swap(entries_[pos], entries_[parent]);
      pos = parent;
    }
  }
  Entry Pop() {
    OSRS_DCHECK(size_ > 0);
    Entry top = entries_[0];
    entries_[0] = entries_[--size_];
    size_t pos = 0;
    while (true) {
      size_t left = 2 * pos + 1;
      size_t right = left + 1;
      size_t best = pos;
      if (left < size_ && Precedes(entries_[left], entries_[best]))
        best = left;
      if (right < size_ && Precedes(entries_[right], entries_[best]))
        best = right;
      if (best == pos) break;
      std::swap(entries_[pos], entries_[best]);
      pos = best;
    }
    return top;
  }

 private:
  static bool Precedes(const Entry& a, const Entry& b) {
    if (a.gain != b.gain) return a.gain > b.gain;
    return a.id < b.id;  // smaller id wins ties, like the eager heap
  }

  std::span<Entry> entries_;
  size_t size_ = 0;
};

}  // namespace

GreedySummarizer::GreedySummarizer(GreedyOptions options)
    : options_(options) {}

std::string GreedySummarizer::name() const {
  return options_.heap == GreedyOptions::Heap::kEager ? "Greedy"
                                                      : "Greedy(lazy)";
}

Result<SummaryResult> GreedySummarizer::Summarize(
    const CoverageGraph& graph, int k, const ExecutionBudget& budget) {
  OSRS_RETURN_IF_ERROR(ValidateK(graph, k));
  return options_.heap == GreedyOptions::Heap::kEager
             ? SummarizeEager(graph, k, budget)
             : SummarizeLazy(graph, k, budget);
}

Result<SummaryResult> GreedySummarizer::SummarizeEager(
    const CoverageGraph& graph, int k, const ExecutionBudget& budget) {
  Stopwatch watch;
  const int num_targets = graph.num_targets();
  const int num_candidates = graph.num_candidates();
  const double* target_weights = graph.target_weights_or_null();

  // All per-solve scratch lives in the thread's arena and is reclaimed
  // wholesale by the frame; nothing below may escape into the result or a
  // Status (see DESIGN.md, "Performance architecture"). best[] is float:
  // coverage distances are integral hop counts, exact in float, and the
  // float lane is what the gain kernel streams.
  Arena& arena = PerThreadSolveArena();
  ArenaFrame frame(arena);
  std::span<float> best = arena.AllocateArray<float>(
      static_cast<size_t>(num_targets));
  std::copy(graph.root_distances_f32(),
            graph.root_distances_f32() + num_targets, best.begin());

  // Initialize the max-heap with δ(p, {r}) for every candidate. Before any
  // selection there is no incumbent, so a tripped budget here is a plain
  // error.
  EvalCounter evals;
  std::span<double> initial_gain =
      arena.AllocateArray<double>(static_cast<size_t>(num_candidates));
  {
    obs::TraceSpan init_span(obs::Phase::kHeapInit);
    for (int u = 0; u < num_candidates; ++u) {
      if (u % kInitCheckPeriod == 0) {
        Status init_status = budget.Check();
        if (!init_status.ok()) {
          obs::TraceStat(obs::Stat::kDistanceEvaluations,
                         evals.distance_evals);
          return init_status;
        }
      }
      initial_gain[static_cast<size_t>(u)] =
          GainOf(graph, best.data(), u, evals);
    }
  }
  obs::TraceStat(obs::Stat::kCandidatesConsidered, num_candidates);
  IndexedMaxHeap heap(initial_gain, arena);

  SummaryResult result;
  result.cost = graph.EmptySummaryCost();
  int64_t key_updates = 0;
  int64_t heap_pops = 0;

  // Accumulates per-candidate key deltas across all targets improved by
  // one selection, so each affected candidate gets a single heap update.
  // Dense array + touched list instead of a hash map: deltas are strictly
  // positive, so pending_delta[c] == 0.0 marks "not yet touched this
  // round" and the reset after applying is O(touched).
  std::span<double> pending_delta =
      arena.AllocateArray<double>(static_cast<size_t>(num_candidates));
  std::fill(pending_delta.begin(), pending_delta.end(), 0.0);
  std::span<int32_t> touched =
      arena.AllocateArray<int32_t>(static_cast<size_t>(num_candidates));

  obs::TraceSpan select_span(obs::Phase::kGreedyIterations);
  for (int round = 0; round < k && !heap.empty(); ++round) {
    // Injected failures abort the solve with the injected Status — the
    // facade's fallback chain then decides what (if anything) runs next.
    OSRS_RETURN_IF_ERROR(OSRS_FAILPOINT("osrs.solver.step"));
    Status budget_status = budget.Check(key_updates);
    if (!budget_status.ok()) {
      if (budget_status.code() == StatusCode::kCancelled) {
        return budget_status;
      }
      // The partial selection is a valid (smaller) summary: return it as
      // the incumbent instead of discarding the rounds already done.
      result.approximate = true;
      result.stop_reason = budget_status.code();
      break;
    }
    int chosen = heap.PopMax();
    ++heap_pops;
    result.selected.push_back(chosen);
    size_t num_touched = 0;

    // Apply the selection: improve best[] along chosen's edges, and record
    // how the improvement shrinks the gains of other coverers of those
    // targets (the neighbor-of-neighbor updates of Algorithm 2, lines
    // 7-9). This stays scalar — the backward walk needs the old best per
    // target anyway — while the gain scans above and below vectorize.
    const CoverageGraph::EdgeLanes edges = graph.ForwardLanesOf(chosen);
    evals.distance_evals += static_cast<int64_t>(edges.size);
    for (size_t i = 0; i < edges.size; ++i) {
      const int32_t w = edges.endpoint[i];
      float& current = best[static_cast<size_t>(w)];
      if (edges.distance[i] >= current) continue;
      const double old_best = static_cast<double>(current);
      const double new_best = static_cast<double>(edges.distance[i]);
      const double target_weight =
          target_weights == nullptr ? 1.0
                                    : target_weights[static_cast<size_t>(w)];
      current = edges.distance[i];
      result.cost -= (old_best - new_best) * target_weight;
      const CoverageGraph::EdgeLanes covering = graph.BackwardLanesOf(w);
      for (size_t j = 0; j < covering.size; ++j) {
        const int32_t candidate = covering.endpoint[j];
        if (!heap.Contains(candidate)) continue;
        const double back_distance =
            static_cast<double>(covering.distance[j]);
        double before = std::max(0.0, old_best - back_distance);
        double after = std::max(0.0, new_best - back_distance);
        if (before != after) {
          double& slot = pending_delta[static_cast<size_t>(candidate)];
          if (slot == 0.0) touched[num_touched++] = candidate;
          slot += (before - after) * target_weight;
        }
      }
    }
    for (size_t t = 0; t < num_touched; ++t) {
      const int candidate = touched[t];
      heap.UpdateKey(candidate, heap.KeyOf(candidate) -
                                    pending_delta[static_cast<size_t>(
                                        candidate)]);
      pending_delta[static_cast<size_t>(candidate)] = 0.0;
      ++key_updates;
    }
  }

  obs::TraceStat(obs::Stat::kHeapPops, heap_pops);
  obs::TraceStat(obs::Stat::kKeyUpdates, key_updates);
  obs::TraceStat(obs::Stat::kDistanceEvaluations, evals.distance_evals);
  SolvesCounter()->Increment();
  result.seconds = watch.ElapsedSeconds();
  result.work = key_updates;
  return result;
}

Result<SummaryResult> GreedySummarizer::SummarizeLazy(
    const CoverageGraph& graph, int k, const ExecutionBudget& budget) {
  Stopwatch watch;
  const int num_targets = graph.num_targets();
  const int num_candidates = graph.num_candidates();

  Arena& arena = PerThreadSolveArena();
  ArenaFrame frame(arena);
  std::span<float> best =
      arena.AllocateArray<float>(static_cast<size_t>(num_targets));
  std::copy(graph.root_distances_f32(),
            graph.root_distances_f32() + num_targets, best.begin());

  // Max-heap of (possibly stale gain, candidate). Staleness is safe
  // because the gain is monotone non-increasing as F grows
  // (submodularity): a recomputed gain still at the top is exactly the
  // true maximum. Each candidate has at most one live entry (a pop either
  // retires or re-pushes it), so capacity n suffices.
  LazyMaxHeap heap(static_cast<size_t>(num_candidates), arena);
  std::span<uint8_t> selected_flag =
      arena.AllocateArray<uint8_t>(static_cast<size_t>(num_candidates));
  std::fill(selected_flag.begin(), selected_flag.end(), uint8_t{0});
  EvalCounter evals;
  {
    obs::TraceSpan init_span(obs::Phase::kHeapInit);
    for (int u = 0; u < num_candidates; ++u) {
      if (u % kInitCheckPeriod == 0) {
        Status init_status = budget.Check();
        if (!init_status.ok()) {
          obs::TraceStat(obs::Stat::kDistanceEvaluations,
                         evals.distance_evals);
          return init_status;
        }
      }
      heap.Push({GainOf(graph, best.data(), u, evals), u});
    }
  }
  obs::TraceStat(obs::Stat::kCandidatesConsidered, num_candidates);

  SummaryResult result;
  result.cost = graph.EmptySummaryCost();
  int64_t recomputes = 0;
  int64_t heap_pops = 0;

  obs::TraceSpan select_span(obs::Phase::kGreedyIterations);
  for (int round = 0; round < k && !heap.empty(); ++round) {
    OSRS_RETURN_IF_ERROR(OSRS_FAILPOINT("osrs.solver.step"));
    Status budget_status = budget.Check(recomputes);
    if (!budget_status.ok()) {
      if (budget_status.code() == StatusCode::kCancelled) {
        return budget_status;
      }
      result.approximate = true;
      result.stop_reason = budget_status.code();
      break;
    }
    while (true) {
      const int u = heap.Pop().id;
      ++heap_pops;
      if (selected_flag[static_cast<size_t>(u)] != 0) continue;
      double fresh = GainOf(graph, best.data(), u, evals);
      ++recomputes;
      if (heap.empty() || fresh >= heap.Top().gain) {
        selected_flag[static_cast<size_t>(u)] = 1;
        result.selected.push_back(u);
        // Apply the pick with the vectorized min-update: best[] improves
        // in place and the returned covered-cost decrease follows the
        // fixed accumulation-order contract, so it is bit-identical
        // between the scalar and AVX2 backends.
        const CoverageGraph::EdgeLanes edges = graph.ForwardLanesOf(u);
        evals.distance_evals += static_cast<int64_t>(edges.size);
        result.cost -= simd::ApplyPickMin(edges.endpoint, edges.distance,
                                          edges.size, best.data(),
                                          graph.target_weights_or_null());
        break;
      }
      heap.Push({fresh, u});
    }
  }

  obs::TraceStat(obs::Stat::kHeapPops, heap_pops);
  obs::TraceStat(obs::Stat::kGainRecomputes, recomputes);
  obs::TraceStat(obs::Stat::kDistanceEvaluations, evals.distance_evals);
  SolvesCounter()->Increment();
  result.seconds = watch.ElapsedSeconds();
  result.work = recomputes;
  return result;
}

}  // namespace osrs
