#ifndef OSRS_COMMON_LOGGING_H_
#define OSRS_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace osrs {
namespace internal_logging {

/// Terminates the process after printing a fatal-check message. Used by the
/// OSRS_CHECK family below; not part of the public API.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "OSRS_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace osrs

/// Aborts the process when `condition` is false. Use for programmer-error
/// invariants only; recoverable failures must return osrs::Status instead.
#define OSRS_CHECK(condition)                                               \
  do {                                                                      \
    if (!(condition)) {                                                     \
      ::osrs::internal_logging::CheckFailed(__FILE__, __LINE__, #condition, \
                                            "");                            \
    }                                                                       \
  } while (false)

/// OSRS_CHECK with an additional streamed message, e.g.
/// `OSRS_CHECK_MSG(i < n, "index " << i << " out of range")`.
#define OSRS_CHECK_MSG(condition, stream_expr)                              \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::ostringstream osrs_check_stream;                                 \
      osrs_check_stream << stream_expr;                                     \
      ::osrs::internal_logging::CheckFailed(__FILE__, __LINE__, #condition, \
                                            osrs_check_stream.str());       \
    }                                                                       \
  } while (false)

#define OSRS_CHECK_EQ(a, b) OSRS_CHECK_MSG((a) == (b), (a) << " vs " << (b))
#define OSRS_CHECK_NE(a, b) OSRS_CHECK_MSG((a) != (b), (a) << " vs " << (b))
#define OSRS_CHECK_LT(a, b) OSRS_CHECK_MSG((a) < (b), (a) << " vs " << (b))
#define OSRS_CHECK_LE(a, b) OSRS_CHECK_MSG((a) <= (b), (a) << " vs " << (b))
#define OSRS_CHECK_GT(a, b) OSRS_CHECK_MSG((a) > (b), (a) << " vs " << (b))
#define OSRS_CHECK_GE(a, b) OSRS_CHECK_MSG((a) >= (b), (a) << " vs " << (b))

/// Debug-only variants for hot-path invariants (heap sifts, per-edge graph
/// accessors) where an always-on OSRS_CHECK costs measurable time. Active
/// in Debug builds (and any build compiled without NDEBUG); compiled to
/// nothing under NDEBUG, including the default RelWithDebInfo
/// configuration. The condition is not evaluated when disabled, so it must
/// be side-effect free.
#ifndef NDEBUG
#define OSRS_DCHECK(condition) OSRS_CHECK(condition)
#define OSRS_DCHECK_MSG(condition, stream_expr) \
  OSRS_CHECK_MSG(condition, stream_expr)
#else
#define OSRS_DCHECK(condition) \
  do {                         \
  } while (false)
#define OSRS_DCHECK_MSG(condition, stream_expr) \
  do {                                          \
  } while (false)
#endif

#define OSRS_DCHECK_EQ(a, b) OSRS_DCHECK_MSG((a) == (b), (a) << " vs " << (b))
#define OSRS_DCHECK_NE(a, b) OSRS_DCHECK_MSG((a) != (b), (a) << " vs " << (b))
#define OSRS_DCHECK_LT(a, b) OSRS_DCHECK_MSG((a) < (b), (a) << " vs " << (b))
#define OSRS_DCHECK_LE(a, b) OSRS_DCHECK_MSG((a) <= (b), (a) << " vs " << (b))
#define OSRS_DCHECK_GT(a, b) OSRS_DCHECK_MSG((a) > (b), (a) << " vs " << (b))
#define OSRS_DCHECK_GE(a, b) OSRS_DCHECK_MSG((a) >= (b), (a) << " vs " << (b))

#endif  // OSRS_COMMON_LOGGING_H_
