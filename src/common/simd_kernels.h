#ifndef OSRS_COMMON_SIMD_KERNELS_H_
#define OSRS_COMMON_SIMD_KERNELS_H_

// Implementation detail of common/simd.h: the three solver kernels written
// once as templates over a lane-ops policy, instantiated twice — with
// ScalarOps (below) into the always-available fallback, and with the AVX2
// intrinsic policy (simd_avx2.cpp) into the vector backend. Both
// instantiations execute the *same* sequence of IEEE operations per
// element and the same fixed lane-striped accumulation order, which is
// what makes the backends bit-identical by construction rather than by
// tolerance (proven by tests/solver_simd_diff_test.cpp).
//
// The accumulation-order contract (documented in DESIGN.md):
//   - element i contributes to accumulator stripe i % 8 (stripes 0-3 in
//     the "lo" register, 4-7 in "hi");
//   - a contribution is double(float(best - d)) [· tw], i.e. the
//     improvement is computed as one float subtraction, widened exactly,
//     then multiplied by the double multiplicity in one double rounding —
//     no FMA anywhere, so scalar mul+add matches the vector path;
//   - stripes reduce as ((s0+s4)+(s2+s6)) + ((s1+s5)+(s3+s7));
//   - short tails are padded to a full 8-lane chunk with distance +inf
//     (a padded lane's improvement is -inf, masked to a zero
//     contribution) and endpoint 0 (a harmless in-bounds gather).

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace osrs::simd::detail {

/// The reference lane policy: fixed-size arrays and per-lane loops. The
/// compiler may auto-vectorize these loops — that is fine, auto
/// vectorization preserves IEEE semantics — but no manual intrinsics and
/// no target flags are involved, so this backend runs on any CPU.
struct ScalarOps {
  struct F32 {
    float v[8];
  };
  struct I32 {
    int32_t v[8];
  };
  struct F64 {
    double v[4];
  };

  static F32 LoadF32(const float* p) {
    F32 r;
    for (int j = 0; j < 8; ++j) r.v[j] = p[j];
    return r;
  }
  static I32 LoadI32(const int32_t* p) {
    I32 r;
    for (int j = 0; j < 8; ++j) r.v[j] = p[j];
    return r;
  }
  static F32 GatherF32(const float* base, I32 idx) {
    F32 r;
    for (int j = 0; j < 8; ++j) r.v[j] = base[idx.v[j]];
    return r;
  }
  static F64 GatherF64Lo(const double* base, I32 idx) {
    F64 r;
    for (int j = 0; j < 4; ++j) r.v[j] = base[idx.v[j]];
    return r;
  }
  static F64 GatherF64Hi(const double* base, I32 idx) {
    F64 r;
    for (int j = 0; j < 4; ++j) r.v[j] = base[idx.v[4 + j]];
    return r;
  }
  static F32 SubF32(F32 a, F32 b) {
    F32 r;
    for (int j = 0; j < 8; ++j) r.v[j] = a.v[j] - b.v[j];
    return r;
  }
  static F64 WidenLo(F32 x) {
    F64 r;
    for (int j = 0; j < 4; ++j) r.v[j] = static_cast<double>(x.v[j]);
    return r;
  }
  static F64 WidenHi(F32 x) {
    F64 r;
    for (int j = 0; j < 4; ++j) r.v[j] = static_cast<double>(x.v[4 + j]);
    return r;
  }
  static F64 ZeroF64() { return F64{{0.0, 0.0, 0.0, 0.0}}; }
  static F64 MulF64(F64 a, F64 b) {
    F64 r;
    for (int j = 0; j < 4; ++j) r.v[j] = a.v[j] * b.v[j];
    return r;
  }
  static F64 AddF64(F64 a, F64 b) {
    F64 r;
    for (int j = 0; j < 4; ++j) r.v[j] = a.v[j] + b.v[j];
    return r;
  }
  /// value where gate > 0, else +0.0 (the vector backend's and-with-mask).
  static F64 MaskPositive(F64 value, F64 gate) {
    F64 r;
    for (int j = 0; j < 4; ++j) r.v[j] = gate.v[j] > 0.0 ? value.v[j] : 0.0;
    return r;
  }
  /// Bit j set iff x[j] > 0.
  static int PositiveMask8(F32 x) {
    int m = 0;
    for (int j = 0; j < 8; ++j) m |= (x.v[j] > 0.0f) ? (1 << j) : 0;
    return m;
  }
  /// ((s0+s4)+(s2+s6)) + ((s1+s5)+(s3+s7)) — the fixed reduction tree.
  static double ReduceTree(F64 lo, F64 hi) {
    double t0 = lo.v[0] + hi.v[0];
    double t1 = lo.v[1] + hi.v[1];
    double t2 = lo.v[2] + hi.v[2];
    double t3 = lo.v[3] + hi.v[3];
    return (t0 + t2) + (t1 + t3);
  }

  static F64 LoadF64(const double* p) {
    F64 r;
    for (int j = 0; j < 4; ++j) r.v[j] = p[j];
    return r;
  }
  static F64 BroadcastF64(double x) { return F64{{x, x, x, x}}; }
  /// Bit j set iff |v[j] - c[j]| <= e[j] (one IEEE sub, exact abs, one
  /// compare — no rounding beyond the subtraction, in either backend).
  static int AbsDiffLeMask4(F64 v, F64 c, F64 e) {
    int m = 0;
    for (int j = 0; j < 4; ++j) {
      m |= (std::abs(v.v[j] - c.v[j]) <= e.v[j]) ? (1 << j) : 0;
    }
    return m;
  }
};

/// K1 — marginal-gain reduction over one SoA CSR row. See the contract in
/// the file comment; `tw` may be null (all multiplicities 1).
template <typename Ops>
double GainReduceImpl(const int32_t* endpoints, const float* distances,
                      size_t n, const float* best, const double* tw) {
  typename Ops::F64 acc_lo = Ops::ZeroF64();
  typename Ops::F64 acc_hi = Ops::ZeroF64();
  auto step = [&](const int32_t* e8, const float* d8) {
    typename Ops::I32 idx = Ops::LoadI32(e8);
    typename Ops::F32 d = Ops::LoadF32(d8);
    typename Ops::F32 imp = Ops::SubF32(Ops::GatherF32(best, idx), d);
    typename Ops::F64 lo = Ops::WidenLo(imp);
    typename Ops::F64 hi = Ops::WidenHi(imp);
    typename Ops::F64 vlo =
        tw != nullptr ? Ops::MulF64(lo, Ops::GatherF64Lo(tw, idx)) : lo;
    typename Ops::F64 vhi =
        tw != nullptr ? Ops::MulF64(hi, Ops::GatherF64Hi(tw, idx)) : hi;
    acc_lo = Ops::AddF64(acc_lo, Ops::MaskPositive(vlo, lo));
    acc_hi = Ops::AddF64(acc_hi, Ops::MaskPositive(vhi, hi));
  };
  size_t i = 0;
  for (; i + 8 <= n; i += 8) step(endpoints + i, distances + i);
  if (i < n) {
    alignas(64) int32_t ep_pad[8];
    alignas(64) float d_pad[8];
    for (size_t j = 0; j < 8; ++j) {
      ep_pad[j] = i + j < n ? endpoints[i + j] : 0;
      d_pad[j] = i + j < n ? distances[i + j]
                           : std::numeric_limits<float>::infinity();
    }
    step(ep_pad, d_pad);
  }
  return Ops::ReduceTree(acc_lo, acc_hi);
}

/// K2 — post-pick min-update with cost delta. Endpoints within a row are
/// unique (CSR construction guarantees it), so the gather-before-store
/// inside one chunk can never observe a stale lane.
template <typename Ops>
double ApplyPickMinImpl(const int32_t* endpoints, const float* distances,
                        size_t n, float* best, const double* tw) {
  typename Ops::F64 acc_lo = Ops::ZeroF64();
  typename Ops::F64 acc_hi = Ops::ZeroF64();
  auto step = [&](const int32_t* e8, const float* d8) {
    typename Ops::I32 idx = Ops::LoadI32(e8);
    typename Ops::F32 d = Ops::LoadF32(d8);
    typename Ops::F32 imp = Ops::SubF32(Ops::GatherF32(best, idx), d);
    typename Ops::F64 lo = Ops::WidenLo(imp);
    typename Ops::F64 hi = Ops::WidenHi(imp);
    typename Ops::F64 vlo =
        tw != nullptr ? Ops::MulF64(lo, Ops::GatherF64Lo(tw, idx)) : lo;
    typename Ops::F64 vhi =
        tw != nullptr ? Ops::MulF64(hi, Ops::GatherF64Hi(tw, idx)) : hi;
    acc_lo = Ops::AddF64(acc_lo, Ops::MaskPositive(vlo, lo));
    acc_hi = Ops::AddF64(acc_hi, Ops::MaskPositive(vhi, hi));
    // d < best[w]  ⇔  best[w] - d > 0 for finite floats (a subtraction of
    // distinct finite values is never exactly zero), so the store mask can
    // reuse the improvement sign.
    int m = Ops::PositiveMask8(imp);
    while (m != 0) {
      int lane = std::countr_zero(static_cast<unsigned>(m));
      best[e8[lane]] = d8[lane];
      m &= m - 1;
    }
  };
  size_t i = 0;
  for (; i + 8 <= n; i += 8) step(endpoints + i, distances + i);
  if (i < n) {
    alignas(64) int32_t ep_pad[8];
    alignas(64) float d_pad[8];
    for (size_t j = 0; j < 8; ++j) {
      ep_pad[j] = i + j < n ? endpoints[i + j] : 0;
      d_pad[j] = i + j < n ? distances[i + j]
                           : std::numeric_limits<float>::infinity();
    }
    step(ep_pad, d_pad);
  }
  return Ops::ReduceTree(acc_lo, acc_hi);
}

/// K3 — sentiment eps-window predicate over a sorted bucket slice. Pure
/// predicate (one subtraction, exact |·|, one compare per element): no
/// accumulation order to pin, trivially bit-identical across backends.
template <typename Ops>
size_t EpsWindowMaskImpl(const double* sentiments, size_t n, double center,
                         double eps, uint64_t* mask) {
  typename Ops::F64 c = Ops::BroadcastF64(center);
  typename Ops::F64 e = Ops::BroadcastF64(eps);
  size_t count = 0;
  size_t i = 0;
  size_t wi = 0;
  // Full 64-element blocks assemble their word in a register — 16 4-lane
  // chunks, then one store and one popcount per word (the per-chunk
  // read-modify-write of the mask was the kernel's bottleneck).
  for (; i + 64 <= n; i += 64, ++wi) {
    uint64_t word = 0;
    for (size_t j = 0; j < 64; j += 4) {
      int m = Ops::AbsDiffLeMask4(Ops::LoadF64(sentiments + i + j), c, e);
      word |= static_cast<uint64_t>(static_cast<unsigned>(m)) << j;
    }
    mask[wi] = word;
    count += static_cast<size_t>(std::popcount(word));
  }
  // Partial last word: vector chunks while they fit, scalar remainder —
  // the same exact predicate (one IEEE sub, exact |·|, one compare).
  if (i < n) {
    uint64_t word = 0;
    size_t j = 0;
    for (; i + j + 4 <= n; j += 4) {
      int m = Ops::AbsDiffLeMask4(Ops::LoadF64(sentiments + i + j), c, e);
      word |= static_cast<uint64_t>(static_cast<unsigned>(m)) << j;
    }
    for (; i + j < n; ++j) {
      if (std::abs(sentiments[i + j] - center) <= eps) {
        word |= uint64_t{1} << j;
      }
    }
    mask[wi] = word;
    count += static_cast<size_t>(std::popcount(word));
  }
  return count;
}

}  // namespace osrs::simd::detail

#endif  // OSRS_COMMON_SIMD_KERNELS_H_
