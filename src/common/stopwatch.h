#ifndef OSRS_COMMON_STOPWATCH_H_
#define OSRS_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace osrs {

/// Monotonic wall-clock stopwatch used by the experiment harness.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Reset() { start_ = Clock::now(); }

  /// Integer nanoseconds elapsed since construction or the last Reset() —
  /// the single clock read every other accessor derives from, so the unit
  /// conversions below are one multiply each instead of repeated rescaling
  /// of a double-precision duration.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - start_)
        .count();
  }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }

  /// Microseconds elapsed since construction or the last Reset().
  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) * 1e-3;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace osrs

#endif  // OSRS_COMMON_STOPWATCH_H_
