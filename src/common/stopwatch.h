#ifndef OSRS_COMMON_STOPWATCH_H_
#define OSRS_COMMON_STOPWATCH_H_

#include <chrono>

namespace osrs {

/// Monotonic wall-clock stopwatch used by the experiment harness.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Microseconds elapsed since construction or the last Reset().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace osrs

#endif  // OSRS_COMMON_STOPWATCH_H_
