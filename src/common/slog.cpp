#include "common/slog.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/strings.h"
#include "common/sync.h"

namespace osrs::slog {
namespace {

/// Monotonic nanoseconds for the rate limiters (epoch is arbitrary).
int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Wall-clock milliseconds since the Unix epoch for the ts_ms field.
int64_t WallMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

struct SinkState {
  Mutex mutex;
  Sink sink OSRS_GUARDED_BY(mutex) = nullptr;
  void* user_data OSRS_GUARDED_BY(mutex) = nullptr;
};

SinkState& GlobalSinkState() {
  static SinkState* state = new SinkState();  // never freed
  return *state;
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kDebug:
      return "debug";
    case Level::kInfo:
      return "info";
    case Level::kWarn:
      return "warn";
    case Level::kError:
      return "error";
  }
  return "unknown";
}

void Field::AppendTo(std::string* out) const {
  *out += StrFormat("\"%s\":", JsonEscape(key_).c_str());
  switch (kind_) {
    case Kind::kString:
      *out += StrFormat("\"%s\"", JsonEscape(str_).c_str());
      break;
    case Kind::kBool:
      *out += int_ != 0 ? "true" : "false";
      break;
    case Kind::kInt:
      *out += StrFormat("%lld", static_cast<long long>(int_));
      break;
    case Kind::kUint:
      *out += StrFormat("%llu", static_cast<unsigned long long>(uint_));
      break;
    case Kind::kDouble:
      *out += StrFormat("%.6g", double_);
      break;
  }
}

void SetSink(Sink sink, void* user_data) {
  SinkState& state = GlobalSinkState();
  MutexLock lock(state.mutex);
  state.sink = sink;
  state.user_data = user_data;
}

void Emit(Level level, std::string_view module, uint64_t trace_id,
          std::string_view message, std::initializer_list<Field> fields,
          uint64_t dropped_since_last) {
  std::string line;
  line.reserve(192);
  line += StrFormat("{\"ts_ms\":%lld,\"level\":\"%s\",\"module\":\"%s\"",
                    static_cast<long long>(WallMillis()), LevelName(level),
                    JsonEscape(module).c_str());
  // Hex string, not a JSON number: 64-bit ids survive any parser's
  // double-precision number path untouched.
  if (trace_id != 0) {
    line += StrFormat(",\"trace_id\":\"%016llx\"",
                      static_cast<unsigned long long>(trace_id));
  }
  line += StrFormat(",\"message\":\"%s\"", JsonEscape(message).c_str());
  for (const Field& field : fields) {
    line += ',';
    field.AppendTo(&line);
  }
  if (dropped_since_last > 0) {
    line += StrFormat(",\"dropped\":%llu",
                      static_cast<unsigned long long>(dropped_since_last));
  }
  line += "}\n";

  SinkState& state = GlobalSinkState();
  MutexLock lock(state.mutex);
  if (state.sink != nullptr) {
    state.sink(line, state.user_data);
  } else {
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

SiteRateLimiter::SiteRateLimiter(double burst, double per_second)
    : burst_micro_(static_cast<int64_t>(burst * kMicroToken)),
      per_second_(per_second),
      micro_tokens_(burst_micro_),
      last_refill_ns_(MonotonicNanos()) {}

bool SiteRateLimiter::Admit(uint64_t* dropped_since_last) {
  int64_t now = MonotonicNanos();
  int64_t last = last_refill_ns_.load(std::memory_order_relaxed);
  // One thread wins the refill window; the tokens it adds are visible to
  // every concurrent Admit through the shared token count.
  if (now > last && last_refill_ns_.compare_exchange_strong(
                        last, now, std::memory_order_relaxed)) {
    int64_t add = static_cast<int64_t>(static_cast<double>(now - last) *
                                       1e-9 * per_second_ *
                                       static_cast<double>(kMicroToken));
    if (add > 0) {
      int64_t current = micro_tokens_.load(std::memory_order_relaxed);
      while (true) {
        int64_t next = std::min(burst_micro_, current + add);
        if (next == current) break;
        if (micro_tokens_.compare_exchange_weak(current, next,
                                                std::memory_order_relaxed)) {
          break;
        }
      }
    }
  }
  int64_t current = micro_tokens_.load(std::memory_order_relaxed);
  while (current >= kMicroToken) {
    if (micro_tokens_.compare_exchange_weak(current, current - kMicroToken,
                                            std::memory_order_relaxed)) {
      *dropped_since_last = dropped_.exchange(0, std::memory_order_relaxed);
      return true;
    }
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

}  // namespace osrs::slog
