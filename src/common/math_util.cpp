#include "common/math_util.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace osrs {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double sq = 0.0;
  for (double v : values) sq += (v - mean) * (v - mean);
  return std::sqrt(sq / static_cast<double>(values.size()));
}

double Percentile(std::vector<double> values, double q) {
  OSRS_CHECK(!values.empty());
  OSRS_CHECK(q >= 0.0 && q <= 100.0);
  std::sort(values.begin(), values.end());
  double rank = q / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double HarmonicNumber(size_t i) {
  double h = 0.0;
  for (size_t j = 1; j <= i; ++j) h += 1.0 / static_cast<double>(j);
  return h;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  OSRS_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm2(const std::vector<double>& a) { return std::sqrt(Dot(a, a)); }

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  double na = Norm2(a);
  double nb = Norm2(b);
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

double Clamp(double v, double lo, double hi) {
  return std::max(lo, std::min(hi, v));
}

bool NearlyEqual(double a, double b, double tol) {
  return std::abs(a - b) <= tol;
}

}  // namespace osrs
