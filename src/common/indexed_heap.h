#ifndef OSRS_COMMON_INDEXED_HEAP_H_
#define OSRS_COMMON_INDEXED_HEAP_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/logging.h"

namespace osrs {

/// Binary max-heap over the fixed id range [0, n) with addressable keys.
///
/// Supports the operations Algorithm 2 needs: build from initial keys,
/// pop-max, and UpdateKey for ids whose marginal gain changed when a
/// neighbor-of-neighbor was selected. Ids removed by PopMax stay out.
/// Ties break toward the smaller id so runs are deterministic.
///
/// Storage is either owned (vector constructor) or arena-backed (span +
/// Arena constructor, the greedy solver's per-solve path — zero heap
/// allocation at steady state). Because the arena form aliases external
/// storage, the heap is neither copyable nor movable.
///
/// Precondition checks on the per-operation paths are OSRS_DCHECKs: they
/// run in Debug builds only, because this heap sits in the greedy solver's
/// innermost loop (one Update per touched neighbor per selection).
class IndexedMaxHeap {
 public:
  /// Builds a heap containing every id in [0, keys.size()) in O(n),
  /// owning all storage.
  explicit IndexedMaxHeap(std::vector<double> keys)
      : owned_keys_(std::move(keys)),
        owned_nodes_(2 * owned_keys_.size()) {
    Init(owned_keys_.data(),
         owned_nodes_.data(),
         owned_nodes_.data() + owned_keys_.size(),
         owned_keys_.size());
  }

  /// Arena-backed form: `keys` (keyed by id, mutated in place by
  /// UpdateKey) stays caller-allocated — typically itself arena scratch —
  /// and the heap/position arrays come from `arena`. Everything must
  /// outlive the heap; nothing is freed on destruction.
  IndexedMaxHeap(std::span<double> keys, Arena& arena) {
    std::span<int32_t> nodes = arena.AllocateArray<int32_t>(2 * keys.size());
    Init(keys.data(), nodes.data(), nodes.data() + keys.size(), keys.size());
  }

  IndexedMaxHeap(const IndexedMaxHeap&) = delete;
  IndexedMaxHeap& operator=(const IndexedMaxHeap&) = delete;

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  /// True iff `id` is still in the heap (never popped).
  bool Contains(int id) const {
    return id >= 0 && static_cast<size_t>(id) < num_ids_ &&
           position_[static_cast<size_t>(id)] >= 0;
  }

  /// Current key of `id` (valid while Contains(id)).
  double KeyOf(int id) const {
    OSRS_DCHECK(Contains(id));
    return keys_[static_cast<size_t>(id)];
  }

  /// Id with the maximum key (smallest id on ties), without removing it.
  int PeekMax() const {
    OSRS_DCHECK(size_ > 0);
    return heap_[0];
  }

  /// Removes and returns the id with the maximum key.
  int PopMax() {
    OSRS_DCHECK(size_ > 0);
    int top = heap_[0];
    SwapNodes(0, size_ - 1);
    --size_;
    position_[static_cast<size_t>(top)] = -1;
    if (size_ > 0) SiftDown(0);
    return top;
  }

  /// Changes the key of a contained id and restores the heap property.
  void UpdateKey(int id, double new_key) {
    OSRS_DCHECK(Contains(id));
    double old_key = keys_[static_cast<size_t>(id)];
    keys_[static_cast<size_t>(id)] = new_key;
    size_t pos = static_cast<size_t>(position_[static_cast<size_t>(id)]);
    if (new_key > old_key) {
      SiftUp(pos);
    } else if (new_key < old_key) {
      SiftDown(pos);
    }
  }

 private:
  void Init(double* keys, int32_t* heap, int32_t* position, size_t n) {
    keys_ = keys;
    heap_ = heap;
    position_ = position;
    num_ids_ = n;
    size_ = n;
    for (size_t i = 0; i < n; ++i) {
      heap_[i] = static_cast<int32_t>(i);
      position_[i] = static_cast<int32_t>(i);
    }
    // Floyd's linear-time heapify.
    for (size_t i = n; i-- > 0;) SiftDown(i);
  }

  /// Priority order: larger key first, then smaller id.
  bool Precedes(int a, int b) const {
    double ka = keys_[static_cast<size_t>(a)];
    double kb = keys_[static_cast<size_t>(b)];
    if (ka != kb) return ka > kb;
    return a < b;
  }

  void SwapNodes(size_t i, size_t j) {
    std::swap(heap_[i], heap_[j]);
    position_[static_cast<size_t>(heap_[i])] = static_cast<int32_t>(i);
    position_[static_cast<size_t>(heap_[j])] = static_cast<int32_t>(j);
  }

  void SiftUp(size_t pos) {
    while (pos > 0) {
      size_t parent = (pos - 1) / 2;
      if (!Precedes(heap_[pos], heap_[parent])) break;
      SwapNodes(pos, parent);
      pos = parent;
    }
  }

  void SiftDown(size_t pos) {
    const size_t n = size_;
    while (true) {
      size_t left = 2 * pos + 1;
      size_t right = left + 1;
      size_t best = pos;
      if (left < n && Precedes(heap_[left], heap_[best])) best = left;
      if (right < n && Precedes(heap_[right], heap_[best])) best = right;
      if (best == pos) break;
      SwapNodes(pos, best);
      pos = best;
    }
  }

  // Backing storage when constructed from a vector; empty in arena form.
  std::vector<double> owned_keys_;
  std::vector<int32_t> owned_nodes_;  // heap followed by position

  double* keys_ = nullptr;      // keyed by id
  int32_t* heap_ = nullptr;     // heap of ids, first size_ live
  int32_t* position_ = nullptr; // id -> index in heap_, -1 once popped
  size_t num_ids_ = 0;
  size_t size_ = 0;
};

}  // namespace osrs

#endif  // OSRS_COMMON_INDEXED_HEAP_H_
