#ifndef OSRS_COMMON_INDEXED_HEAP_H_
#define OSRS_COMMON_INDEXED_HEAP_H_

#include <cstddef>
#include <vector>

#include "common/logging.h"

namespace osrs {

/// Binary max-heap over the fixed id range [0, n) with addressable keys.
///
/// Supports the operations Algorithm 2 needs: build from initial keys,
/// pop-max, and UpdateKey for ids whose marginal gain changed when a
/// neighbor-of-neighbor was selected. Ids removed by PopMax stay out.
/// Ties break toward the smaller id so runs are deterministic.
///
/// Precondition checks on the per-operation paths are OSRS_DCHECKs: they
/// run in Debug builds only, because this heap sits in the greedy solver's
/// innermost loop (one Update per touched neighbor per selection).
class IndexedMaxHeap {
 public:
  /// Builds a heap containing every id in [0, keys.size()) in O(n).
  explicit IndexedMaxHeap(std::vector<double> keys) : keys_(std::move(keys)) {
    heap_.resize(keys_.size());
    position_.resize(keys_.size());
    for (size_t i = 0; i < keys_.size(); ++i) {
      heap_[i] = static_cast<int>(i);
      position_[i] = static_cast<int>(i);
    }
    // Floyd's linear-time heapify.
    for (size_t i = heap_.size(); i-- > 0;) SiftDown(i);
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// True iff `id` is still in the heap (never popped).
  bool Contains(int id) const {
    return id >= 0 && static_cast<size_t>(id) < position_.size() &&
           position_[static_cast<size_t>(id)] >= 0;
  }

  /// Current key of `id` (valid while Contains(id)).
  double KeyOf(int id) const {
    OSRS_DCHECK(Contains(id));
    return keys_[static_cast<size_t>(id)];
  }

  /// Id with the maximum key (smallest id on ties), without removing it.
  int PeekMax() const {
    OSRS_DCHECK(!heap_.empty());
    return heap_[0];
  }

  /// Removes and returns the id with the maximum key.
  int PopMax() {
    OSRS_DCHECK(!heap_.empty());
    int top = heap_[0];
    SwapNodes(0, heap_.size() - 1);
    heap_.pop_back();
    position_[static_cast<size_t>(top)] = -1;
    if (!heap_.empty()) SiftDown(0);
    return top;
  }

  /// Changes the key of a contained id and restores the heap property.
  void UpdateKey(int id, double new_key) {
    OSRS_DCHECK(Contains(id));
    double old_key = keys_[static_cast<size_t>(id)];
    keys_[static_cast<size_t>(id)] = new_key;
    size_t pos = static_cast<size_t>(position_[static_cast<size_t>(id)]);
    if (new_key > old_key) {
      SiftUp(pos);
    } else if (new_key < old_key) {
      SiftDown(pos);
    }
  }

 private:
  /// Priority order: larger key first, then smaller id.
  bool Precedes(int a, int b) const {
    double ka = keys_[static_cast<size_t>(a)];
    double kb = keys_[static_cast<size_t>(b)];
    if (ka != kb) return ka > kb;
    return a < b;
  }

  void SwapNodes(size_t i, size_t j) {
    std::swap(heap_[i], heap_[j]);
    position_[static_cast<size_t>(heap_[i])] = static_cast<int>(i);
    position_[static_cast<size_t>(heap_[j])] = static_cast<int>(j);
  }

  void SiftUp(size_t pos) {
    while (pos > 0) {
      size_t parent = (pos - 1) / 2;
      if (!Precedes(heap_[pos], heap_[parent])) break;
      SwapNodes(pos, parent);
      pos = parent;
    }
  }

  void SiftDown(size_t pos) {
    const size_t n = heap_.size();
    while (true) {
      size_t left = 2 * pos + 1;
      size_t right = left + 1;
      size_t best = pos;
      if (left < n && Precedes(heap_[left], heap_[best])) best = left;
      if (right < n && Precedes(heap_[right], heap_[best])) best = right;
      if (best == pos) break;
      SwapNodes(pos, best);
      pos = best;
    }
  }

  std::vector<double> keys_;   // keyed by id
  std::vector<int> heap_;      // heap of ids
  std::vector<int> position_;  // id -> index in heap_, -1 once popped
};

}  // namespace osrs

#endif  // OSRS_COMMON_INDEXED_HEAP_H_
