#include "common/status.h"

namespace osrs {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

bool StatusCodeIsRetryable(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace osrs
