#include "common/status.h"

namespace osrs {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

bool StatusCodeIsRetryable(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
    case StatusCode::kInternal:
      return true;
    // kDataLoss is deliberately in the permanent bucket (not merely
    // default-covered): corrupt bytes re-read identically, so a retry can
    // never succeed — it only delays surfacing the loss. chaos_test pins
    // this with an injected data_loss schedule.
    default:
      return false;
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace osrs
