#ifndef OSRS_COMMON_TABLE_WRITER_H_
#define OSRS_COMMON_TABLE_WRITER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace osrs {

/// Renders experiment results as an aligned console table (the format the
/// benchmark binaries print to mirror the paper's tables/figures) and,
/// optionally, as CSV for plotting.
class TableWriter {
 public:
  /// `title` is printed above the table, e.g. "Figure 4 (top pairs): time".
  explicit TableWriter(std::string title) : title_(std::move(title)) {}

  /// Sets the column headers; must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats every cell with the given precision.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 3);

  /// Prints the aligned table to `out` (defaults to stdout).
  void Print(std::FILE* out = stdout) const;

  /// Serializes as CSV (header + rows).
  std::string ToCsv() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace osrs

#endif  // OSRS_COMMON_TABLE_WRITER_H_
