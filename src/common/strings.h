#ifndef OSRS_COMMON_STRINGS_H_
#define OSRS_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace osrs {

/// Splits `text` on `delimiter`, keeping empty fields ("a,,b" -> 3 fields).
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Splits `text` on any ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Escapes `text` for embedding inside a JSON string literal (RFC 8259):
/// quotes, backslashes, and the two-character escapes \b \f \n \r \t, with
/// every remaining control character below 0x20 rendered as \u00XX. Bytes
/// >= 0x80 pass through untouched (the output stays valid for UTF-8
/// input). Returns the escaped body without surrounding quotes.
std::string JsonEscape(std::string_view text);

/// Parses a whole string as a base-10 integer. Returns false (leaving
/// `out` untouched) on empty input, trailing garbage, or overflow — unlike
/// std::stol it never throws, so it is safe on untrusted input.
bool ParseInt64(std::string_view text, int64_t* out);

/// Parses a whole string as a double; same contract as ParseInt64.
bool ParseDouble(std::string_view text, double* out);

}  // namespace osrs

#endif  // OSRS_COMMON_STRINGS_H_
