#include "common/arena.h"

namespace osrs {

Arena& PerThreadSolveArena() {
  // One arena per thread, warmed across solves. thread_local construction
  // is lazy, so threads that never solve pay nothing.
  thread_local Arena arena;
  return arena;
}

}  // namespace osrs
