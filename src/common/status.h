#ifndef OSRS_COMMON_STATUS_H_
#define OSRS_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace osrs {

/// Machine-readable failure category carried by Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  kResourceExhausted,
  /// A wall-clock deadline expired before the operation completed.
  kDeadlineExceeded,
  /// The operation was stopped by a cooperative cancellation flag.
  kCancelled,
  /// A dependency (file system, allocator pressure, transient I/O) was
  /// temporarily unusable; the operation may well succeed if retried.
  kUnavailable,
  /// Durable data is unrecoverably corrupt or truncated: a snapshot failed
  /// its checksum, a journal frame is mangled mid-file, a header names an
  /// unknown format version. Non-retryable — re-reading corrupt bytes
  /// yields the same corrupt bytes; the caller must fall back to an older
  /// snapshot, re-derive the state, or surface the loss to an operator.
  kDataLoss,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// The retryable-vs-permanent taxonomy used by BatchSummarizer's
/// RetryPolicy (documented in README.md, "Failure semantics"). Transient:
/// kUnavailable (I/O hiccup), kResourceExhausted (allocation spike or work
/// budget on a shared machine), kInternal (includes exceptions isolated by
/// the batch worker boundary). Everything else is permanent — retrying an
/// kInvalidArgument burns budget to fail identically, kDeadlineExceeded /
/// kCancelled mean the caller's budget itself is gone, and kDataLoss means
/// the bytes on disk are corrupt: a retry re-reads the same corruption, so
/// retrying it can only mask the loss while burning budget.
bool StatusCodeIsRetryable(StatusCode code);

/// Result of a fallible operation: either OK or a code plus message.
///
/// The library does not throw exceptions on its main paths; operations that
/// can fail for reasons other than programmer error return Status (or
/// Result<T> when they also produce a value).
///
/// [[nodiscard]]: ignoring a returned Status silently drops an error, the
/// exact failure mode the static verification layer exists to prevent.
/// Call sites that genuinely do not care must say so with an explicit
/// `(void)` cast and a comment justifying it.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is a fatal programmer error (checked). [[nodiscard]] for
/// the same reason as Status: a dropped Result drops its error with it.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Intentionally implicit so `return value;` and `return status;` both work
  /// in functions returning Result<T>.
  Result(T value) : data_(std::move(value)) {}
  Result(Status status) : data_(std::move(status)) {
    OSRS_CHECK_MSG(!std::get<Status>(data_).ok(),
                   "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Returns the contained error, or OK when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  const T& value() const& {
    OSRS_CHECK_MSG(ok(), "Result::value() on error: " << status().ToString());
    return std::get<T>(data_);
  }
  T& value() & {
    OSRS_CHECK_MSG(ok(), "Result::value() on error: " << status().ToString());
    return std::get<T>(data_);
  }
  T&& value() && {
    OSRS_CHECK_MSG(ok(), "Result::value() on error: " << status().ToString());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace osrs

/// Propagates a non-OK Status out of the enclosing function.
#define OSRS_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::osrs::Status osrs_status_tmp = (expr);         \
    if (!osrs_status_tmp.ok()) return osrs_status_tmp; \
  } while (false)

#endif  // OSRS_COMMON_STATUS_H_
