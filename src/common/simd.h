#ifndef OSRS_COMMON_SIMD_H_
#define OSRS_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

// Portable SIMD layer for the solver hot kernels. Two backends compiled
// from the same kernel template (common/simd_kernels.h): a scalar
// fallback that builds everywhere, and an AVX2 backend compiled into a
// separate translation unit with -mavx2 when the OSRS_SIMD cmake option
// is ON and the toolchain targets x86-64. Dispatch is at runtime via
// cpuid, so an OSRS_SIMD=ON binary still runs correctly on a pre-AVX2
// machine.
//
// The backends are bit-identical, not merely close: both follow the same
// fixed accumulation-order contract (see simd_kernels.h and DESIGN.md,
// "Performance architecture"), which tests/solver_simd_diff_test.cpp
// verifies end-to-end on randomized graphs.

namespace osrs::simd {

enum class Backend {
  kScalar = 0,
  kAvx2 = 1,
};

/// True when the AVX2 translation unit was compiled in (OSRS_SIMD=ON on a
/// toolchain that accepts -mavx2).
bool Avx2CompiledIn();

/// True when AVX2 is compiled in AND this CPU reports AVX2 support.
bool Avx2Available();

/// The backend the kernels below will use: an explicit override if one is
/// installed, else the best available backend.
Backend ActiveBackend();

const char* BackendName(Backend backend);

/// Testing/bench override. A request for kAvx2 degrades to kScalar when
/// AVX2 is unavailable; returns the backend actually installed. Not
/// synchronized — call only from single-threaded setup code (the diff
/// test, bench mains).
Backend ForceBackend(Backend backend);

/// Returns to automatic (best-available) backend selection.
void ResetBackendOverride();

/// Accumulation stripes of the reduction kernels; part of the fixed
/// accumulation-order contract.
inline constexpr int kAccumulatorLanes = 8;

/// K1 — greedy marginal-gain kernel over one SoA CSR row:
///   Σ_i max(0, best[endpoints[i]] − distances[i]) · tw[endpoints[i]]
/// The improvement is one float subtraction (exact: coverage distances
/// are integral hop counts), widened to double, then weighted by the
/// double multiplicity lane. `target_weights` may be null (all ones).
double GainReduce(const int32_t* endpoints, const float* distances,
                  size_t n, const float* best,
                  const double* target_weights);

/// K2 — per-target best-distance update after a greedy pick: for every
/// edge with distances[i] < best[endpoints[i]], stores the new minimum
/// and accumulates (old − new) · tw into the returned cost decrease.
/// Endpoints within the row must be unique (CSR rows are).
double ApplyPickMin(const int32_t* endpoints, const float* distances,
                    size_t n, float* best, const double* target_weights);

/// K3 — sentiment eps-window predicate over a sorted bucket slice: sets
/// bit i of `mask` iff |sentiments[i] − center| <= eps and returns the
/// population count. `mask` must hold (n + 63) / 64 words and is fully
/// overwritten. The predicate costs one IEEE subtraction per element, so
/// the mask is bit-identical across backends by construction.
size_t EpsWindowMask(const double* sentiments, size_t n, double center,
                     double eps, uint64_t* mask);

}  // namespace osrs::simd

#endif  // OSRS_COMMON_SIMD_H_
