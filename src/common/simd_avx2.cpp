// The AVX2 backend: the kernel templates from simd_kernels.h instantiated
// with an intrinsic lane policy. This is the only translation unit built
// with -mavx2 (see src/common/CMakeLists.txt); callers reach it through
// the runtime-dispatched wrappers in simd.cpp, never directly, so no AVX2
// instruction executes before the cpuid check passes.
//
// Every op maps 1:1 onto a ScalarOps op with identical IEEE semantics:
// sub_ps ↔ per-lane float subtraction, cvtps_pd ↔ exact widening,
// and_pd with a compare mask ↔ the ternary in ScalarOps::MaskPositive
// (an all-ones mask ANDed with a double reproduces its bits exactly;
// all-zeros yields +0.0, same as the scalar else-branch). No FMA is used
// anywhere — that is part of the accumulation-order contract.

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "common/simd_kernels.h"

namespace osrs::simd::internal {

namespace {

struct Avx2Ops {
  using F32 = __m256;
  using I32 = __m256i;
  using F64 = __m256d;

  static F32 LoadF32(const float* p) { return _mm256_loadu_ps(p); }
  static I32 LoadI32(const int32_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static F32 GatherF32(const float* base, I32 idx) {
    return _mm256_i32gather_ps(base, idx, 4);
  }
  static F64 GatherF64(const double* base, __m128i idx) {
    // The masked form with an explicit zero source: same gather, but no
    // _mm256_undefined_pd() operand (GCC 12 flags the unmasked intrinsic
    // with -Wmaybe-uninitialized). The all-ones mask selects every lane.
    const F64 all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    return _mm256_mask_i32gather_pd(_mm256_setzero_pd(), base, idx, all, 8);
  }
  static F64 GatherF64Lo(const double* base, I32 idx) {
    return GatherF64(base, _mm256_castsi256_si128(idx));
  }
  static F64 GatherF64Hi(const double* base, I32 idx) {
    return GatherF64(base, _mm256_extracti128_si256(idx, 1));
  }
  static F32 SubF32(F32 a, F32 b) { return _mm256_sub_ps(a, b); }
  static F64 WidenLo(F32 x) {
    return _mm256_cvtps_pd(_mm256_castps256_ps128(x));
  }
  static F64 WidenHi(F32 x) {
    return _mm256_cvtps_pd(_mm256_extractf128_ps(x, 1));
  }
  static F64 ZeroF64() { return _mm256_setzero_pd(); }
  static F64 MulF64(F64 a, F64 b) { return _mm256_mul_pd(a, b); }
  static F64 AddF64(F64 a, F64 b) { return _mm256_add_pd(a, b); }
  static F64 MaskPositive(F64 value, F64 gate) {
    return _mm256_and_pd(
        value, _mm256_cmp_pd(gate, _mm256_setzero_pd(), _CMP_GT_OQ));
  }
  static int PositiveMask8(F32 x) {
    return _mm256_movemask_ps(
        _mm256_cmp_ps(x, _mm256_setzero_ps(), _CMP_GT_OQ));
  }
  static double ReduceTree(F64 lo, F64 hi) {
    // (s0+s4, s1+s5, s2+s6, s3+s7), then the same tree as ScalarOps:
    // ((s0+s4)+(s2+s6)) + ((s1+s5)+(s3+s7)).
    F64 t = _mm256_add_pd(lo, hi);
    __m128d t01 = _mm256_castpd256_pd128(t);        // (t0, t1)
    __m128d t23 = _mm256_extractf128_pd(t, 1);      // (t2, t3)
    __m128d s = _mm_add_pd(t01, t23);               // (t0+t2, t1+t3)
    return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
  }

  static F64 LoadF64(const double* p) { return _mm256_loadu_pd(p); }
  static F64 BroadcastF64(double x) { return _mm256_set1_pd(x); }
  static int AbsDiffLeMask4(F64 v, F64 c, F64 e) {
    const F64 abs_mask =
        _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
    F64 diff = _mm256_and_pd(_mm256_sub_pd(v, c), abs_mask);
    return _mm256_movemask_pd(_mm256_cmp_pd(diff, e, _CMP_LE_OQ));
  }
};

}  // namespace

double GainReduceAvx2(const int32_t* endpoints, const float* distances,
                      size_t n, const float* best,
                      const double* target_weights) {
  return detail::GainReduceImpl<Avx2Ops>(endpoints, distances, n, best,
                                         target_weights);
}

double ApplyPickMinAvx2(const int32_t* endpoints, const float* distances,
                        size_t n, float* best, const double* target_weights) {
  return detail::ApplyPickMinImpl<Avx2Ops>(endpoints, distances, n, best,
                                           target_weights);
}

size_t EpsWindowMaskAvx2(const double* sentiments, size_t n, double center,
                         double eps, uint64_t* mask) {
  return detail::EpsWindowMaskImpl<Avx2Ops>(sentiments, n, center, eps,
                                            mask);
}

}  // namespace osrs::simd::internal
