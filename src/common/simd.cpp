#include "common/simd.h"

#include <atomic>

#include "common/simd_kernels.h"

#ifndef OSRS_SIMD_ENABLED
#define OSRS_SIMD_ENABLED 0
#endif

namespace osrs::simd {

namespace internal {
#if OSRS_SIMD_ENABLED
// Defined in simd_avx2.cpp, the only TU compiled with -mavx2. Keeping the
// intrinsics in their own TU means no AVX2 instruction can leak into code
// that runs before the cpuid dispatch.
double GainReduceAvx2(const int32_t* endpoints, const float* distances,
                      size_t n, const float* best,
                      const double* target_weights);
double ApplyPickMinAvx2(const int32_t* endpoints, const float* distances,
                        size_t n, float* best, const double* target_weights);
size_t EpsWindowMaskAvx2(const double* sentiments, size_t n, double center,
                         double eps, uint64_t* mask);
#endif
}  // namespace internal

namespace {

// -1 = automatic; otherwise the int value of the forced Backend.
std::atomic<int> g_forced_backend{-1};

bool CpuSupportsAvx2() {
#if OSRS_SIMD_ENABLED
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

}  // namespace

bool Avx2CompiledIn() { return OSRS_SIMD_ENABLED != 0; }

bool Avx2Available() {
  static const bool available = Avx2CompiledIn() && CpuSupportsAvx2();
  return available;
}

Backend ActiveBackend() {
  int forced = g_forced_backend.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Backend>(forced);
  return Avx2Available() ? Backend::kAvx2 : Backend::kScalar;
}

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Backend ForceBackend(Backend backend) {
  if (backend == Backend::kAvx2 && !Avx2Available()) {
    backend = Backend::kScalar;
  }
  g_forced_backend.store(static_cast<int>(backend),
                         std::memory_order_relaxed);
  return backend;
}

void ResetBackendOverride() {
  g_forced_backend.store(-1, std::memory_order_relaxed);
}

double GainReduce(const int32_t* endpoints, const float* distances, size_t n,
                  const float* best, const double* target_weights) {
#if OSRS_SIMD_ENABLED
  if (ActiveBackend() == Backend::kAvx2) {
    return internal::GainReduceAvx2(endpoints, distances, n, best,
                                    target_weights);
  }
#endif
  return detail::GainReduceImpl<detail::ScalarOps>(endpoints, distances, n,
                                                   best, target_weights);
}

double ApplyPickMin(const int32_t* endpoints, const float* distances,
                    size_t n, float* best, const double* target_weights) {
#if OSRS_SIMD_ENABLED
  if (ActiveBackend() == Backend::kAvx2) {
    return internal::ApplyPickMinAvx2(endpoints, distances, n, best,
                                      target_weights);
  }
#endif
  return detail::ApplyPickMinImpl<detail::ScalarOps>(endpoints, distances, n,
                                                     best, target_weights);
}

size_t EpsWindowMask(const double* sentiments, size_t n, double center,
                     double eps, uint64_t* mask) {
#if OSRS_SIMD_ENABLED
  if (ActiveBackend() == Backend::kAvx2) {
    return internal::EpsWindowMaskAvx2(sentiments, n, center, eps, mask);
  }
#endif
  return detail::EpsWindowMaskImpl<detail::ScalarOps>(sentiments, n, center,
                                                      eps, mask);
}

}  // namespace osrs::simd
