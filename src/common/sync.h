#ifndef OSRS_COMMON_SYNC_H_
#define OSRS_COMMON_SYNC_H_

// Annotated synchronization primitives: the repo's only sanctioned mutex
// and condition-variable types, carrying Clang capability-analysis
// attributes so that lock invariants are checked at compile time.
//
// Every concurrent module declares which mutex guards which field
// (OSRS_GUARDED_BY), which methods must be called with a mutex held
// (OSRS_REQUIRES) or not held (OSRS_EXCLUDES), and the analysis — enabled
// with -DOSRS_THREAD_SAFETY=ON under Clang, which adds
// `-Wthread-safety -Wthread-safety-beta -Werror=thread-safety` — rejects
// unguarded reads, double-locks, missing releases, and wrong-mutex
// accesses as compile errors. tests/thread_safety_compile_test feeds
// seeded violations through the compiler to prove the analysis itself
// keeps working; tools/lint.sh bans raw std::mutex / std::lock_guard in
// src/ outside this header so every lock in the tree is analyzable.
//
// On GCC (and any non-Clang compiler) the attribute macros expand to
// nothing and the wrappers are zero-cost shims over std::mutex /
// std::condition_variable, so sanitizer and production builds are
// unaffected.
//
// Known analysis limits that shape the API (see the Clang docs,
// "Thread Safety Analysis"):
//
//   * constructors/destructors are not analyzed, so member init of
//     guarded fields needs no lock;
//   * lambda bodies are analyzed as separate functions with no capability
//     context, so predicates passed to CondVar::Wait must not touch
//     guarded fields — write an explicit `while (!cond) cv.Wait(mu);`
//     loop in the annotated caller instead;
//   * a field guarded by another object's mutex (e.g. a queue node
//     guarded by its owner's lock) cannot name that capability; document
//     it in a comment and keep the handoff protocol local.

#include <chrono>
#include <condition_variable>
#include <mutex>

// Clang exposes the capability analysis through GNU attributes; other
// compilers get empty macros (and must not warn about them).
#if defined(__clang__)
#define OSRS_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define OSRS_THREAD_ANNOTATION_ATTRIBUTE_(x)
#endif

/// Declares a class to be a capability (lockable) type.
#define OSRS_CAPABILITY(x) OSRS_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Declares an RAII class that acquires a capability at construction and
/// releases it at destruction.
#define OSRS_SCOPED_CAPABILITY OSRS_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// Field annotation: reads and writes require holding `x`.
#define OSRS_GUARDED_BY(x) OSRS_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// Pointer-field annotation: dereferences require holding `x` (the
/// pointer itself is unguarded).
#define OSRS_PT_GUARDED_BY(x) OSRS_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// Function annotation: the caller must hold the listed capabilities.
#define OSRS_REQUIRES(...) \
  OSRS_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// Function annotation: the caller must NOT hold the listed capabilities
/// (the function acquires them itself — documents non-reentrancy).
#define OSRS_EXCLUDES(...) \
  OSRS_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Function annotation: acquires the listed capabilities (held on return).
#define OSRS_ACQUIRE(...) \
  OSRS_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

/// Function annotation: releases the listed capabilities.
#define OSRS_RELEASE(...) \
  OSRS_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// Function annotation: attempts acquisition; the first argument is the
/// return value meaning success.
#define OSRS_TRY_ACQUIRE(...) \
  OSRS_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

/// Function annotation: asserts (at runtime, to the analysis) that the
/// capability is held without acquiring it.
#define OSRS_ASSERT_HELD(x) \
  OSRS_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

/// Escape hatch: disables analysis of one function body. Reserve for
/// low-level code whose safety argument lives in a comment.
#define OSRS_NO_THREAD_SAFETY_ANALYSIS \
  OSRS_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

namespace osrs {

/// The repo's mutex: std::mutex carrying the "mutex" capability. Prefer
/// MutexLock over manual Lock/Unlock pairs; the raw methods exist for the
/// rare protocol (and for the negative-compile tests) and are themselves
/// annotated so unbalanced use is a compile error under the analysis.
class OSRS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() OSRS_ACQUIRE() { mu_.lock(); }
  void Unlock() OSRS_RELEASE() { mu_.unlock(); }
  bool TryLock() OSRS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock: acquires at construction, releases at destruction. The
/// analysis tracks the scope, so a guarded field touched outside a
/// MutexLock (or after one ends) is a compile error. Non-copyable and
/// non-movable — a lock's lifetime is its scope, full stop.
class OSRS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) OSRS_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() OSRS_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  MutexLock(MutexLock&&) = delete;
  MutexLock& operator=(MutexLock&&) = delete;

 private:
  Mutex& mu_;
};

/// MutexLock that can release early — for the "decide under the lock,
/// act (reject, log, block) after dropping it" shape. After Release()
/// the destructor is a no-op, and the analysis flags any guarded access
/// in the remainder of the scope.
class OSRS_SCOPED_CAPABILITY ReleasableMutexLock {
 public:
  explicit ReleasableMutexLock(Mutex& mu) OSRS_ACQUIRE(mu) : mu_(&mu) {
    mu_->Lock();
  }
  ~ReleasableMutexLock() OSRS_RELEASE() {
    if (mu_ != nullptr) mu_->Unlock();
  }

  /// Releases the mutex now instead of at scope end. Call at most once.
  void Release() OSRS_RELEASE() {
    mu_->Unlock();
    mu_ = nullptr;
  }

  ReleasableMutexLock(const ReleasableMutexLock&) = delete;
  ReleasableMutexLock& operator=(const ReleasableMutexLock&) = delete;
  ReleasableMutexLock(ReleasableMutexLock&&) = delete;
  ReleasableMutexLock& operator=(ReleasableMutexLock&&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable bound to osrs::Mutex. Wait requires the mutex held
/// (checked by the analysis); it atomically releases while blocked and
/// re-acquires before returning, like std::condition_variable.
///
/// Predicates passed to the convenience overloads run with the mutex
/// held, but the analysis treats lambda bodies as capability-free
/// functions — a predicate reading a guarded field is flagged under
/// Clang. Annotated code should use the plain Wait in an explicit
/// `while (!cond) cv.Wait(mu);` loop; the predicate overloads remain for
/// call sites whose predicate reads only local state. Predicates must
/// not throw (a throwing predicate would unwind through two unlock
/// paths).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) OSRS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) OSRS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  /// Waits up to `ms` milliseconds; returns false on timeout.
  bool WaitForMs(Mutex& mu, double ms) OSRS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    std::cv_status status =
        cv_.wait_for(lock, std::chrono::duration<double, std::milli>(ms));
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  /// Waits up to `ms` milliseconds for `pred` to hold; returns the final
  /// predicate value (true = condition met, false = timed out).
  template <typename Predicate>
  bool WaitForMs(Mutex& mu, double ms, Predicate pred) OSRS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    bool satisfied =
        cv_.wait_for(lock, std::chrono::duration<double, std::milli>(ms),
                     std::move(pred));
    lock.release();
    return satisfied;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace osrs

#endif  // OSRS_COMMON_SYNC_H_
