#ifndef OSRS_COMMON_RNG_H_
#define OSRS_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace osrs {

/// Deterministic, seedable pseudo-random generator (xoshiro256** core with a
/// SplitMix64 seeding sequence).
///
/// Every randomized component in the library takes an explicit Rng (or a
/// seed) so that corpora, algorithms and experiments are reproducible
/// bit-for-bit across runs. Satisfies the essential parts of the standard
/// UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next raw 64 random bits.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses unbiased
  /// rejection sampling (Lemire-style) rather than modulo.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal deviate (Box-Muller, no caching for determinism).
  double NextGaussian();

  /// Normal deviate with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// True with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Zipf-distributed rank in [0, n) with exponent `s` (s > 0). Rank 0 is the
  /// most probable. Implemented by inversion on the precomputable CDF is too
  /// costly per call for large n, so uses rejection sampling (Devroye).
  uint64_t NextZipf(uint64_t n, double s);

  /// Index in [0, weights.size()) sampled proportionally to `weights`.
  /// Weights must be non-negative with a positive sum.
  size_t NextDiscrete(std::span<const double> weights);
  size_t NextDiscrete(const std::vector<double>& weights) {
    return NextDiscrete(std::span<const double>(weights));
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Samples `count` distinct indices from [0, n) uniformly (reservoir-free
  /// partial Fisher-Yates). Requires count <= n. Result is in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t count);

  /// Deterministically derives an independent child generator; used to give
  /// each item / worker its own stream.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace osrs

#endif  // OSRS_COMMON_RNG_H_
