#include "common/rng.h"

#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace osrs {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  OSRS_CHECK_GT(bound, 0u);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  OSRS_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  // Box-Muller; draw u1 away from zero to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  OSRS_CHECK_GT(n, 0u);
  OSRS_CHECK_GT(s, 0.0);
  if (n == 1) return 0;
  // Devroye's rejection method for the Zipf distribution on {1..n}.
  const double one_minus_s = 1.0 - s;
  auto h_integral = [&](double x) {
    // Integral of x^-s; continuous envelope of the zipf pmf.
    if (std::abs(one_minus_s) < 1e-12) return std::log(x);
    return (std::pow(x, one_minus_s) - 1.0) / one_minus_s;
  };
  auto h_integral_inv = [&](double y) {
    if (std::abs(one_minus_s) < 1e-12) return std::exp(y);
    return std::pow(1.0 + y * one_minus_s, 1.0 / one_minus_s);
  };
  const double hi = h_integral(static_cast<double>(n) + 0.5);
  const double lo = h_integral(0.5);
  for (;;) {
    double u = lo + (hi - lo) * NextDouble();
    double x = h_integral_inv(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    double kd = static_cast<double>(k);
    // Envelope mass of k's unit cell; >= pmf(k) because x^-s is convex
    // decreasing (Jensen), so accept <= 1 and the sampler is exact.
    double cell = h_integral(kd + 0.5) - h_integral(kd - 0.5);
    double accept = std::pow(kd, -s) / cell;
    if (NextDouble() <= accept) return k - 1;
  }
}

size_t Rng::NextDiscrete(std::span<const double> weights) {
  OSRS_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    OSRS_CHECK_GE(w, 0.0);
    total += w;
  }
  OSRS_CHECK_GT(total, 0.0);
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t count) {
  OSRS_CHECK_LE(count, n);
  std::vector<size_t> indices(n);
  std::iota(indices.begin(), indices.end(), size_t{0});
  // Partial Fisher-Yates: the first `count` positions end up uniform.
  for (size_t i = 0; i < count; ++i) {
    size_t j = i + static_cast<size_t>(NextUint64(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(count);
  return indices;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace osrs
