#include "common/execution_budget.h"

#include <algorithm>
#include <limits>

#include "common/strings.h"

namespace osrs {

double ExecutionBudget::RemainingMs() const {
  if (!has_deadline_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double, std::milli>(deadline_ - Clock::now())
      .count();
}

ExecutionBudget ExecutionBudget::TightenedBy(
    const ExecutionBudget& other) const {
  ExecutionBudget merged = *this;
  if (other.has_deadline_) {
    merged.SetDeadline(merged.has_deadline_
                           ? std::min(merged.deadline_, other.deadline_)
                           : other.deadline_);
  }
  if (other.max_work_ > 0) {
    merged.max_work_ = merged.max_work_ > 0
                           ? std::min(merged.max_work_, other.max_work_)
                           : other.max_work_;
  }
  for (const CancellationFlag* flag : other.cancellations_) {
    merged.AddCancellation(flag);
  }
  return merged;
}

Status ExecutionBudget::CheckSlow(int64_t work_done) const {
  if (cancelled()) return Status::Cancelled("cancellation flag set");
  if (has_deadline_ && Clock::now() >= deadline_) {
    return Status::DeadlineExceeded("wall-clock deadline exceeded");
  }
  if (max_work_ > 0 && work_done >= max_work_) {
    return Status::ResourceExhausted(
        StrFormat("work budget exhausted (%lld >= %lld)",
                  static_cast<long long>(work_done),
                  static_cast<long long>(max_work_)));
  }
  return Status::OK();
}

}  // namespace osrs
