#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstdarg>
#include <cstdio>

namespace osrs {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) parts.emplace_back(text.substr(start, i - start));
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  if (text.empty()) return false;
  std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno == ERANGE || end != buffer.c_str() + buffer.size()) return false;
  *out = static_cast<int64_t>(value);
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty()) return false;
  std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (errno == ERANGE || end != buffer.c_str() + buffer.size()) return false;
  *out = value;
  return true;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(
                                          static_cast<unsigned char>(c)));
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace osrs
