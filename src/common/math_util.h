#ifndef OSRS_COMMON_MATH_UTIL_H_
#define OSRS_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <vector>

namespace osrs {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Population standard deviation; 0 for fewer than two values.
double StdDev(const std::vector<double>& values);

/// Linear-interpolated percentile, `q` in [0, 100]. Input need not be sorted.
double Percentile(std::vector<double> values, double q);

/// Harmonic number H(i) = 1 + 1/2 + ... + 1/i; H(0) = 0. Used by the greedy
/// approximation bound of Theorem 4.
double HarmonicNumber(size_t i);

/// Numerically stable dot product of equal-length vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double Norm2(const std::vector<double>& a);

/// Cosine similarity; 0 when either vector has zero norm.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Clamps `v` to the closed interval [lo, hi].
double Clamp(double v, double lo, double hi);

/// True iff |a - b| <= tol.
bool NearlyEqual(double a, double b, double tol = 1e-9);

}  // namespace osrs

#endif  // OSRS_COMMON_MATH_UTIL_H_
