#ifndef OSRS_COMMON_CRC32C_H_
#define OSRS_COMMON_CRC32C_H_

// CRC-32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum guarding the
// durability layer's on-disk bytes (src/store snapshots and journal
// frames). Castagnoli rather than the zip CRC-32 because its error
// detection properties are strictly better for storage payloads and it is
// what every comparable storage format (LevelDB, RocksDB, ext4 metadata)
// uses, so on-disk artifacts stay conventional.
//
// Software slice-by-8 table implementation: ~1 byte/cycle, no SSE4.2
// dependency, identical output on every build configuration — the
// checksum of a snapshot must not depend on the CPU that wrote it.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace osrs {

/// CRC-32C of `data`, continuing from `seed` (0 starts a fresh checksum).
/// Extending a checksum in pieces gives the same result as one pass:
/// Crc32c(b, n2, Crc32c(a, n1)) == Crc32c(concat(a,b), n1+n2).
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

/// The CRC value stored for an empty payload (Crc32c(nullptr-ish, 0)).
inline constexpr uint32_t kCrc32cEmpty = 0;

}  // namespace osrs

#endif  // OSRS_COMMON_CRC32C_H_
