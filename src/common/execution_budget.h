#ifndef OSRS_COMMON_EXECUTION_BUDGET_H_
#define OSRS_COMMON_EXECUTION_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace osrs {

/// Thread-safe cooperative cancellation flag. One flag may be shared by any
/// number of concurrent solves (e.g. every worker of a batch); `Cancel()`
/// from any thread asks all of them to stop at their next budget check.
/// The flag must outlive every ExecutionBudget referencing it.
///
/// A single release-store / acquire-load atomic, not a common/sync.h
/// Mutex: solver loops poll `cancelled()` on their hot path and must not
/// block, and the release/acquire pair already guarantees that a solver
/// observing the flag also observes whatever the cancelling thread wrote
/// before calling Cancel(). Being lock-free, it carries no capability
/// annotations — Clang's analysis covers the Mutex-guarded modules, TSan
/// covers this one (see DESIGN.md, "Static analysis v2").
class CancellationFlag {
 public:
  CancellationFlag() = default;
  CancellationFlag(const CancellationFlag&) = delete;
  CancellationFlag& operator=(const CancellationFlag&) = delete;

  /// Requests cancellation. Idempotent; safe from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// Rearms the flag for reuse. Only call while no solve is in flight.
  void Reset() { cancelled_.store(false, std::memory_order_release); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Cooperative execution budget threaded through every solver loop: an
/// optional wall-clock deadline, an optional deterministic work budget
/// (branch-and-bound nodes, simplex iterations, greedy rounds, ...), and
/// any number of shared cancellation flags.
///
/// Budgets are cheap values; solvers receive them by const reference and
/// call `Check(work_done)` every check interval (each outer round, every
/// few dozen inner iterations). A non-OK check means the solver must stop
/// promptly and either return the Status or its best incumbent so far
/// flagged as approximate. Check order: cancellation (kCancelled), then
/// deadline (kDeadlineExceeded), then work (kResourceExhausted), so a
/// cancelled solve is always reported as cancelled.
///
/// The default-constructed budget is unlimited and every check is OK, so
/// budget-aware loops cost one branch per check interval when unused.
class ExecutionBudget {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unlimited budget: never expires, never cancelled.
  ExecutionBudget() = default;

  static ExecutionBudget Unlimited() { return ExecutionBudget(); }

  /// Budget expiring `deadline_ms` milliseconds from now.
  static ExecutionBudget FromDeadlineMs(double deadline_ms) {
    ExecutionBudget budget;
    budget.SetDeadlineMs(deadline_ms);
    return budget;
  }

  /// Sets the deadline to `deadline_ms` milliseconds from now. Values <= 0
  /// produce an already-expired deadline.
  void SetDeadlineMs(double deadline_ms) {
    SetDeadline(Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(deadline_ms)));
  }

  void SetDeadline(Clock::time_point deadline) {
    has_deadline_ = true;
    deadline_ = deadline;
  }

  /// Deterministic work budget; `max_work` <= 0 means unlimited. The unit
  /// is solver-defined (the same unit as SummaryResult::work).
  void SetMaxWork(int64_t max_work) { max_work_ = max_work; }

  /// Registers a cancellation flag; may be called more than once (e.g. a
  /// whole-batch flag plus a per-item flag). Null pointers are ignored.
  void AddCancellation(const CancellationFlag* flag) {
    if (flag != nullptr) cancellations_.push_back(flag);
  }

  bool has_deadline() const { return has_deadline_; }
  int64_t max_work() const { return max_work_; }

  /// True when no deadline, work bound, or cancellation flag is attached.
  bool IsUnlimited() const {
    return !has_deadline_ && max_work_ <= 0 && cancellations_.empty();
  }

  /// Milliseconds until the deadline (negative once expired); +infinity
  /// when no deadline is set.
  double RemainingMs() const;

  /// Returns the tighter combination of this budget and `other`: earlier
  /// deadline, smaller work bound, union of cancellation flags.
  ExecutionBudget TightenedBy(const ExecutionBudget& other) const;

  /// Copy of this budget with deadline and work bound stripped, keeping
  /// only the cancellation flags. Last-resort fallbacks run under this so
  /// they always produce a summary yet stay cancellable.
  ExecutionBudget CancellationOnly() const {
    ExecutionBudget out;
    out.cancellations_ = cancellations_;
    return out;
  }

  bool cancelled() const {
    for (const CancellationFlag* flag : cancellations_) {
      if (flag->cancelled()) return true;
    }
    return false;
  }

  /// The budget check solver loops call each interval. `work_done` is the
  /// solver's progress counter compared against the work budget.
  Status Check(int64_t work_done = 0) const {
    if (IsUnlimited()) return Status::OK();
    return CheckSlow(work_done);
  }

 private:
  Status CheckSlow(int64_t work_done) const;

  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  int64_t max_work_ = 0;
  std::vector<const CancellationFlag*> cancellations_;
};

}  // namespace osrs

#endif  // OSRS_COMMON_EXECUTION_BUDGET_H_
