#ifndef OSRS_COMMON_ARENA_H_
#define OSRS_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

#include "common/logging.h"

namespace osrs {

/// Bump allocator for per-solve scratch (best-distance arrays, gain keys,
/// heap storage, rounding weights). Every allocation is 64-byte aligned —
/// one cache line, and the alignment the SIMD kernels (common/simd.h)
/// want for streaming lane loads — and costs one pointer bump; memory is
/// reclaimed wholesale by rewinding to a mark, never per object.
///
/// Lifetime rules (see DESIGN.md, "Performance architecture"):
///   - Only trivially destructible element types: nothing is destroyed at
///     rewind, the bytes are simply reused (enforced by static_assert).
///   - Arena-backed storage must never escape the ArenaFrame that
///     allocated it. In particular no Status/Result payload and no
///     SummaryResult field may point into the arena — copy into owned
///     containers before returning.
///   - Frames nest: LocalSearchSummarizer's frame stays open across the
///     GreedySummarizer seed solve, whose own frame rewinds first.
///
/// Blocks grow geometrically and are retained across rewinds, so a warmed
/// arena allocates nothing at steady state. One instance is not
/// thread-safe; use PerThreadSolveArena() for the per-thread singleton the
/// solvers and the serving layer's worker pool share.
class Arena {
 public:
  static constexpr size_t kAlignment = 64;

  explicit Arena(size_t initial_bytes = 1 << 16)
      : initial_bytes_(initial_bytes < kAlignment ? kAlignment
                                                  : initial_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// A rewind point: everything allocated after Position() is reclaimed by
  /// Rewind(). Marks must be rewound in LIFO order (ArenaFrame enforces
  /// this structurally).
  struct Mark {
    size_t block = 0;
    size_t used = 0;
  };

  Mark Position() const { return Mark{current_block_, CurrentUsed()}; }

  void Rewind(const Mark& mark) {
    OSRS_DCHECK_LE(mark.block, blocks_.size());
    for (size_t b = mark.block + 1; b < blocks_.size(); ++b) {
      blocks_[b].used = 0;
    }
    if (mark.block < blocks_.size()) {
      blocks_[mark.block].used = mark.used;
    }
    current_block_ = mark.block;
  }

  /// Uninitialized 64-byte-aligned array of `count` Ts. T must be
  /// trivially destructible: the arena never runs destructors.
  template <typename T>
  std::span<T> AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena scratch is reclaimed without running destructors");
    static_assert(alignof(T) <= kAlignment);
    T* data = static_cast<T*>(AllocateBytes(count * sizeof(T)));
    return {data, count};
  }

  /// Raw 64-byte-aligned storage of `bytes` bytes.
  void* AllocateBytes(size_t bytes) {
    if (bytes == 0) bytes = kAlignment;  // distinct non-null allocations
    size_t rounded = RoundUp(bytes);
    while (current_block_ < blocks_.size()) {
      Block& block = blocks_[current_block_];
      if (block.used + rounded <= block.size) {
        void* out = block.aligned + block.used;
        block.used += rounded;
        return out;
      }
      if (current_block_ + 1 == blocks_.size()) break;
      ++current_block_;
      OSRS_DCHECK_EQ(blocks_[current_block_].used, 0u);
    }
    AddBlock(rounded);
    Block& block = blocks_[current_block_];
    void* out = block.aligned + block.used;
    block.used += rounded;
    return out;
  }

  /// Total bytes reserved across all blocks (diagnostic).
  size_t TotalReserved() const {
    size_t total = 0;
    for (const Block& block : blocks_) total += block.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> storage;  // over-allocated by kAlignment
    std::byte* aligned = nullptr;
    size_t size = 0;
    size_t used = 0;
  };

  static size_t RoundUp(size_t bytes) {
    return (bytes + kAlignment - 1) & ~(kAlignment - 1);
  }

  size_t CurrentUsed() const {
    return current_block_ < blocks_.size() ? blocks_[current_block_].used : 0;
  }

  void AddBlock(size_t min_bytes) {
    size_t size = blocks_.empty() ? initial_bytes_ : blocks_.back().size * 2;
    if (size < min_bytes) size = RoundUp(min_bytes);
    Block block;
    block.storage = std::make_unique<std::byte[]>(size + kAlignment);
    auto raw = reinterpret_cast<uintptr_t>(block.storage.get());
    block.aligned = block.storage.get() +
                    ((kAlignment - raw % kAlignment) % kAlignment);
    block.size = size;
    block.used = 0;
    blocks_.push_back(std::move(block));
    current_block_ = blocks_.size() - 1;
  }

  size_t initial_bytes_;
  std::vector<Block> blocks_;
  size_t current_block_ = 0;
};

/// RAII frame over an arena: records the position on entry and rewinds on
/// exit. Everything a solver allocates inside its frame is scratch; the
/// bytes are recycled for the next solve on the same thread.
class ArenaFrame {
 public:
  explicit ArenaFrame(Arena& arena)
      : arena_(arena), mark_(arena.Position()) {}
  ~ArenaFrame() { arena_.Rewind(mark_); }

  ArenaFrame(const ArenaFrame&) = delete;
  ArenaFrame& operator=(const ArenaFrame&) = delete;

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

/// The per-thread solve arena. Solvers open an ArenaFrame on it per solve;
/// because it is thread-local, the serving layer's long-lived worker
/// threads (and BatchSummarizer workers) reuse the same warmed blocks
/// across every solve they run, eliminating steady-state scratch
/// allocation entirely.
Arena& PerThreadSolveArena();

/// Allocator placing std::vector storage on 64-byte boundaries — used for
/// the structure-of-arrays CSR lanes of the coverage graph so SIMD kernels
/// see cache-line-aligned lane starts.
template <typename T, size_t Alignment = Arena::kAlignment>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}  // NOLINT

  T* allocate(size_t count) {
    return static_cast<T*>(
        ::operator new(count * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* pointer, size_t) {
    ::operator delete(pointer, std::align_val_t(Alignment));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace osrs

#endif  // OSRS_COMMON_ARENA_H_
