#include "common/crc32c.h"

#include <array>

namespace osrs {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41

/// 8 tables x 256 entries, built once at first use. Table 0 is the plain
/// byte-at-a-time table; table k folds a zero byte k more times, which is
/// what lets the hot loop consume 8 bytes per iteration.
struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const Tables& tables = GetTables();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  // Byte-align is unnecessary: the slice-by-8 loop reads bytes, not words,
  // so there is no unaligned-load UB to dodge — just fewer table lookups
  // per byte than the plain loop.
  while (size >= 8) {
    uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                         (static_cast<uint32_t>(p[1]) << 8) |
                         (static_cast<uint32_t>(p[2]) << 16) |
                         (static_cast<uint32_t>(p[3]) << 24));
    crc = tables.t[7][lo & 0xFFu] ^ tables.t[6][(lo >> 8) & 0xFFu] ^
          tables.t[5][(lo >> 16) & 0xFFu] ^ tables.t[4][lo >> 24] ^
          tables.t[3][p[4]] ^ tables.t[2][p[5]] ^ tables.t[1][p[6]] ^
          tables.t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = tables.t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace osrs
