#include "common/table_writer.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace osrs {

void TableWriter::SetHeader(std::vector<std::string> header) {
  OSRS_CHECK(rows_.empty());
  header_ = std::move(header);
}

void TableWriter::AddRow(std::vector<std::string> row) {
  OSRS_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TableWriter::AddRow(const std::string& label,
                         const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) {
    row.push_back(StrFormat("%.*f", precision, v));
  }
  AddRow(std::move(row));
}

void TableWriter::Print(std::FILE* out) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::fprintf(out, "\n== %s ==\n", title_.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  std::string rule(total, '-');
  std::fprintf(out, "%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string TableWriter::ToCsv() const {
  std::string out = Join(header_, ",") + "\n";
  for (const auto& row : rows_) out += Join(row, ",") + "\n";
  return out;
}

}  // namespace osrs
