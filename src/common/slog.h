#ifndef OSRS_COMMON_SLOG_H_
#define OSRS_COMMON_SLOG_H_

// Structured leveled logging: one JSON line per event, written to a
// process-wide sink (stderr by default). Every event carries a level, the
// emitting module, a message, an optional 64-bit trace id (rendered as a
// hex string so JSON parsers never round it), and free-form key/value
// fields — so a shed decision, a retry, or a failpoint injection is one
// grep-able, machine-parseable record instead of prose on stderr.
//
// Two switches keep the layer free when unused (mirroring OSRS_OBS, see
// obs/metrics.h):
//
//   * compile time — the cmake option OSRS_LOGGING (default ON) defines
//     OSRS_LOGGING_ENABLED; with -DOSRS_LOGGING=OFF the OSRS_LOG macros
//     compile to a never-taken `if (false)` whose arguments stay
//     type-checked but are never evaluated;
//   * run time — a minimum-level gate (default kInfo) read with one
//     relaxed atomic load before any argument evaluation.
//
// Every OSRS_LOG site additionally owns a token-bucket rate limiter
// (function-local static), so a hot failure path — thousands of sheds per
// second under overload — cannot flood the sink: excess events are
// dropped and the next admitted event from that site reports how many via
// a "dropped" field.
//
// The sink is pluggable (SetSink) so tests capture lines in memory; the
// default writes whole lines to stderr with one fwrite. tools/lint.sh
// bans raw std::cerr / fprintf(stderr) logging in src/ outside this
// logger, making these macros the only diagnostic channel.

#ifndef OSRS_LOGGING_ENABLED
#define OSRS_LOGGING_ENABLED 1
#endif

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

namespace osrs::slog {

/// False when the tree was configured with -DOSRS_LOGGING=OFF.
inline constexpr bool kCompiledIn = OSRS_LOGGING_ENABLED != 0;

enum class Level : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// Stable wire name: "debug" / "info" / "warn" / "error".
const char* LevelName(Level level);

namespace internal {
/// The runtime minimum-level gate. Function-local static so sites touched
/// during static init see an initialized atomic.
inline std::atomic<int>& MinLevelFlag() {
  static std::atomic<int> min_level{static_cast<int>(Level::kInfo)};
  return min_level;
}
}  // namespace internal

/// Events below `level` are dropped before argument evaluation.
inline void SetMinLevel(Level level) {
  internal::MinLevelFlag().store(static_cast<int>(level),
                                 std::memory_order_relaxed);
}

inline Level MinLevel() {
  return static_cast<Level>(
      internal::MinLevelFlag().load(std::memory_order_relaxed));
}

/// True when an event at `level` would be emitted (compiled in and at or
/// above the runtime minimum level).
inline bool ShouldLog(Level level) {
  if constexpr (!kCompiledIn) return false;
  return static_cast<int>(level) >=
         internal::MinLevelFlag().load(std::memory_order_relaxed);
}

/// One key/value pair of an event. Holds views only — a Field is valid
/// for the full expression it is constructed in (the OSRS_LOG call),
/// which is exactly as long as Emit needs it.
class Field {
 public:
  Field(std::string_view key, std::string_view value)
      : key_(key), kind_(Kind::kString), str_(value) {}
  Field(std::string_view key, const char* value)
      : key_(key), kind_(Kind::kString), str_(value) {}
  Field(std::string_view key, bool value)
      : key_(key), kind_(Kind::kBool), int_(value ? 1 : 0) {}
  Field(std::string_view key, int value)
      : key_(key), kind_(Kind::kInt), int_(value) {}
  Field(std::string_view key, long value)
      : key_(key), kind_(Kind::kInt), int_(value) {}
  Field(std::string_view key, long long value)
      : key_(key), kind_(Kind::kInt), int_(value) {}
  Field(std::string_view key, unsigned value)
      : key_(key), kind_(Kind::kUint), uint_(value) {}
  Field(std::string_view key, unsigned long value)
      : key_(key), kind_(Kind::kUint), uint_(value) {}
  Field(std::string_view key, unsigned long long value)
      : key_(key), kind_(Kind::kUint), uint_(value) {}
  Field(std::string_view key, double value)
      : key_(key), kind_(Kind::kDouble), double_(value) {}

  /// Appends `"key":<value>` (JSON-escaped) to `out`.
  void AppendTo(std::string* out) const;

 private:
  enum class Kind { kString, kBool, kInt, kUint, kDouble };
  std::string_view key_;
  Kind kind_;
  std::string_view str_;
  int64_t int_ = 0;
  uint64_t uint_ = 0;
  double double_ = 0.0;
};

/// Line sink. Receives one complete JSON line (newline included) per
/// event; calls are serialized by the logger's internal mutex.
using Sink = void (*)(std::string_view line, void* user_data);

/// Replaces the process-wide sink (nullptr restores the stderr default).
/// Intended for tests and embedding; the previous sink is not returned,
/// so restore with SetSink(nullptr, nullptr).
void SetSink(Sink sink, void* user_data);

/// Formats and writes one event:
///   {"ts_ms":<wall ms>,"level":"...","module":"...",
///    "trace_id":"<16 hex>",      (omitted when trace_id == 0)
///    "message":"...",<fields...>,"dropped":N}   (dropped omitted when 0)
/// Prefer the OSRS_LOG macros, which add the level gate and per-site rate
/// limiting around this call.
void Emit(Level level, std::string_view module, uint64_t trace_id,
          std::string_view message, std::initializer_list<Field> fields,
          uint64_t dropped_since_last = 0);

/// Token bucket guarding one log site: `burst` tokens capacity, refilled
/// at `per_second`. Lock-free (relaxed atomics); under contention a
/// refill may be applied by one thread while another drops, so admission
/// is approximate by a token or two — fine for log throttling. Dropped
/// events are counted and handed to the next admitted caller so the
/// stream records the gap.
class SiteRateLimiter {
 public:
  SiteRateLimiter(double burst, double per_second);

  /// Takes one token if available. On success stores the number of events
  /// dropped since the previous success in `*dropped_since_last` (and
  /// zeroes the tally); on failure counts the drop and returns false.
  bool Admit(uint64_t* dropped_since_last);

 private:
  static constexpr int64_t kMicroToken = 1000000;  // fixed-point token
  const int64_t burst_micro_;
  const double per_second_;
  std::atomic<int64_t> micro_tokens_;
  std::atomic<int64_t> last_refill_ns_;
  std::atomic<uint64_t> dropped_{0};
};

/// Default per-site throttle: a 20-event burst, refilled at 5/s. Hot
/// paths (shed storms, chaos-injected failures) settle at five lines per
/// second per site with an accurate dropped count.
inline constexpr double kDefaultBurst = 20.0;
inline constexpr double kDefaultPerSecond = 5.0;

}  // namespace osrs::slog

// One structured event with an explicit trace id. `fields...` are
// brace-ready Field initializers: OSRS_LOG_T(osrs::slog::Level::kWarn,
// "serve", id, "shed", {"item", item_id}, {"queue_ms", q}).
#if OSRS_LOGGING_ENABLED
#define OSRS_LOG_T(level, module, trace_id_expr, message, ...)             \
  do {                                                                     \
    if (::osrs::slog::ShouldLog(level)) {                                  \
      static ::osrs::slog::SiteRateLimiter osrs_log_limiter_(              \
          ::osrs::slog::kDefaultBurst, ::osrs::slog::kDefaultPerSecond);   \
      uint64_t osrs_log_dropped_ = 0;                                      \
      if (osrs_log_limiter_.Admit(&osrs_log_dropped_)) {                   \
        ::osrs::slog::Emit(level, module, trace_id_expr, message,          \
                           {__VA_ARGS__}, osrs_log_dropped_);              \
      }                                                                    \
    }                                                                      \
  } while (0)
#else
// Compiled out: arguments stay type-checked (so a site cannot rot behind
// the off configuration) but are never evaluated at run time.
#define OSRS_LOG_T(level, module, trace_id_expr, message, ...)          \
  do {                                                                  \
    if (false) {                                                        \
      ::osrs::slog::Emit(level, module, trace_id_expr, message,         \
                         {__VA_ARGS__}, 0);                             \
    }                                                                   \
  } while (0)
#endif

// One structured event with no request association (trace_id omitted).
#define OSRS_LOG(level, module, message, ...) \
  OSRS_LOG_T(level, module, /*trace_id=*/0, message, ##__VA_ARGS__)

#endif  // OSRS_COMMON_SLOG_H_
