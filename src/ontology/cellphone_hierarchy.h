#ifndef OSRS_ONTOLOGY_CELLPHONE_HIERARCHY_H_
#define OSRS_ONTOLOGY_CELLPHONE_HIERARCHY_H_

#include "ontology/ontology.h"

namespace osrs {

/// Builds the manually curated cell-phone aspect hierarchy of Fig. 3:
/// ~100 popular aspects extracted by Double Propagation, arranged in a
/// three-level tree rooted at "phone". Every aspect carries itself (and a
/// few common variants) as extraction synonyms.
Ontology BuildCellPhoneHierarchy();

}  // namespace osrs

#endif  // OSRS_ONTOLOGY_CELLPHONE_HIERARCHY_H_
