#include "ontology/ontology.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "common/strings.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"

namespace osrs {
namespace {

obs::Counter* ClosureEntriesCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("osrs.ontology.closure_entries");
  return counter;
}

}  // namespace

ConceptId Ontology::AddConcept(std::string name) {
  OSRS_CHECK(!finalized_);
  ConceptId id = static_cast<ConceptId>(names_.size());
  names_.push_back(std::move(name));
  parents_.emplace_back();
  children_.emplace_back();
  return id;
}

Status Ontology::ValidateId(ConceptId id) const {
  if (id < 0 || static_cast<size_t>(id) >= names_.size()) {
    return Status::InvalidArgument(
        StrFormat("concept id %d out of range [0, %zu)", id, names_.size()));
  }
  return Status::OK();
}

Status Ontology::AddEdge(ConceptId parent, ConceptId child) {
  OSRS_CHECK(!finalized_);
  OSRS_RETURN_IF_ERROR(ValidateId(parent));
  OSRS_RETURN_IF_ERROR(ValidateId(child));
  if (parent == child) {
    return Status::InvalidArgument(
        StrFormat("self-loop on concept %d (%s)", parent,
                  names_[parent].c_str()));
  }
  auto& kids = children_[parent];
  if (std::find(kids.begin(), kids.end(), child) != kids.end()) {
    return Status::OK();  // duplicate edges are harmless
  }
  kids.push_back(child);
  parents_[child].push_back(parent);
  ++num_edges_;
  return Status::OK();
}

Status Ontology::AddSynonym(ConceptId id, std::string term) {
  OSRS_CHECK(!finalized_);
  OSRS_RETURN_IF_ERROR(ValidateId(id));
  std::string key = ToLower(term);
  auto [it, inserted] = term_to_concept_.emplace(key, id);
  if (!inserted && it->second != id) {
    return Status::InvalidArgument(
        StrFormat("term '%s' already maps to concept %d", key.c_str(),
                  it->second));
  }
  return Status::OK();
}

Status Ontology::Finalize() {
  OSRS_RETURN_IF_ERROR(OSRS_FAILPOINT("osrs.ontology.finalize"));
  if (finalized_) {
    return Status::FailedPrecondition("Finalize() called twice");
  }
  if (names_.empty()) {
    return Status::FailedPrecondition("ontology has no concepts");
  }

  // Exactly one root (no parents).
  root_ = kInvalidConcept;
  for (ConceptId id = 0; id < static_cast<ConceptId>(names_.size()); ++id) {
    if (parents_[id].empty()) {
      if (root_ != kInvalidConcept) {
        return Status::FailedPrecondition(
            StrFormat("multiple roots: %d (%s) and %d (%s)", root_,
                      names_[root_].c_str(), id, names_[id].c_str()));
      }
      root_ = id;
    }
  }
  if (root_ == kInvalidConcept) {
    return Status::FailedPrecondition("no root concept (cycle through all)");
  }

  // Kahn's algorithm: topological order + cycle detection.
  std::vector<int> remaining_parents(names_.size());
  for (size_t i = 0; i < names_.size(); ++i) {
    remaining_parents[i] = static_cast<int>(parents_[i].size());
  }
  std::deque<ConceptId> frontier{root_};
  topo_order_.clear();
  topo_order_.reserve(names_.size());
  while (!frontier.empty()) {
    ConceptId c = frontier.front();
    frontier.pop_front();
    topo_order_.push_back(c);
    for (ConceptId child : children_[c]) {
      if (--remaining_parents[child] == 0) frontier.push_back(child);
    }
  }
  if (topo_order_.size() != names_.size()) {
    return Status::FailedPrecondition(StrFormat(
        "graph has a cycle or unreachable concepts (%zu of %zu ordered)",
        topo_order_.size(), names_.size()));
  }

  // Shortest root→c distances via BFS (edges have unit length).
  depth_from_root_.assign(names_.size(), -1);
  depth_from_root_[root_] = 0;
  std::deque<ConceptId> bfs{root_};
  max_depth_ = 0;
  while (!bfs.empty()) {
    ConceptId c = bfs.front();
    bfs.pop_front();
    for (ConceptId child : children_[c]) {
      if (depth_from_root_[child] == -1) {
        depth_from_root_[child] = depth_from_root_[c] + 1;
        max_depth_ = std::max(max_depth_, depth_from_root_[child]);
        bfs.push_back(child);
      }
    }
  }

  // Transitive ancestor closure with shortest hop distances, flattened to
  // CSR. A DP over the topological order (parents complete before their
  // children): closure(c) = {(c, 0)} ∪ min-merge over parents p of
  // {(a, d + 1) : (a, d) ∈ closure(p)}. The `best` scratch dedupes shared
  // ancestors of multi-parent diamonds keeping the minimum distance.
  {
    std::vector<std::vector<AncestorEntry>> closure(names_.size());
    std::vector<int32_t> best(names_.size(), -1);
    std::vector<ConceptId> touched;
    for (ConceptId c : topo_order_) {
      best[static_cast<size_t>(c)] = 0;
      touched.push_back(c);
      for (ConceptId parent : parents_[static_cast<size_t>(c)]) {
        for (const AncestorEntry& entry :
             closure[static_cast<size_t>(parent)]) {
          int32_t via_parent = entry.distance + 1;
          int32_t& slot = best[static_cast<size_t>(entry.concept_id)];
          if (slot < 0) {
            slot = via_parent;
            touched.push_back(entry.concept_id);
          } else if (via_parent < slot) {
            slot = via_parent;
          }
        }
      }
      auto& mine = closure[static_cast<size_t>(c)];
      mine.reserve(touched.size());
      for (ConceptId ancestor : touched) {
        int32_t& slot = best[static_cast<size_t>(ancestor)];
        mine.push_back({ancestor, slot});
        slot = -1;  // reset the scratch for the next concept
      }
      touched.clear();
      std::sort(mine.begin(), mine.end(),
                [](const AncestorEntry& a, const AncestorEntry& b) {
                  return a.distance != b.distance ? a.distance < b.distance
                                                  : a.concept_id < b.concept_id;
                });
    }
    size_t total_entries = 0;
    for (const auto& entries : closure) total_entries += entries.size();
    closure_offsets_.assign(names_.size() + 1, 0);
    closure_entries_.clear();
    closure_entries_.reserve(total_entries);
    for (size_t id = 0; id < names_.size(); ++id) {
      closure_entries_.insert(closure_entries_.end(), closure[id].begin(),
                              closure[id].end());
      closure_offsets_[id + 1] = closure_entries_.size();
    }
    ClosureEntriesCounter()->Add(static_cast<int64_t>(total_entries));
  }

  finalized_ = true;
  return Status::OK();
}

ConceptId Ontology::root() const {
  OSRS_CHECK(finalized_);
  return root_;
}

const std::string& Ontology::name(ConceptId id) const {
  OSRS_CHECK(ValidateId(id).ok());
  return names_[id];
}

const std::vector<ConceptId>& Ontology::parents(ConceptId id) const {
  OSRS_CHECK(ValidateId(id).ok());
  return parents_[id];
}

const std::vector<ConceptId>& Ontology::children(ConceptId id) const {
  OSRS_CHECK(ValidateId(id).ok());
  return children_[id];
}

bool Ontology::IsAncestorOrSelf(ConceptId ancestor,
                                ConceptId descendant) const {
  return AncestorDistance(ancestor, descendant) >= 0;
}

int Ontology::AncestorDistance(ConceptId ancestor, ConceptId descendant) const {
  OSRS_CHECK(finalized_);
  OSRS_CHECK(ValidateId(ancestor).ok());
  OSRS_CHECK(ValidateId(descendant).ok());
  if (ancestor == descendant) return 0;
  if (ancestor == root_) return depth_from_root_[descendant];
  // Ancestor sets are small (see AverageAncestorCount), so a scan of the
  // precomputed closure span beats any per-call traversal.
  for (const AncestorEntry& entry : AncestorsOf(descendant)) {
    if (entry.concept_id == ancestor) return entry.distance;
  }
  return -1;
}

std::span<const AncestorEntry> Ontology::AncestorsOf(ConceptId id) const {
  OSRS_CHECK(finalized_);
  OSRS_CHECK(ValidateId(id).ok());
  return {closure_entries_.data() + closure_offsets_[static_cast<size_t>(id)],
          closure_offsets_[static_cast<size_t>(id) + 1] -
              closure_offsets_[static_cast<size_t>(id)]};
}

std::vector<std::pair<ConceptId, int>> Ontology::AncestorsWithDistance(
    ConceptId id) const {
  std::vector<std::pair<ConceptId, int>> result;
  std::span<const AncestorEntry> entries = AncestorsOf(id);
  result.reserve(entries.size());
  for (const AncestorEntry& entry : entries) {
    result.emplace_back(entry.concept_id, entry.distance);
  }
  return result;
}

int Ontology::DepthFromRoot(ConceptId id) const {
  OSRS_CHECK(finalized_);
  OSRS_CHECK(ValidateId(id).ok());
  return depth_from_root_[id];
}

double Ontology::AverageAncestorCount() const {
  OSRS_CHECK(finalized_);
  return static_cast<double>(closure_entries_.size()) /
         static_cast<double>(names_.size());
}

std::vector<ConceptId> Ontology::DescendantsOf(ConceptId id) const {
  OSRS_CHECK(finalized_);
  OSRS_CHECK(ValidateId(id).ok());
  std::vector<ConceptId> result{id};
  std::vector<bool> seen(names_.size(), false);
  seen[static_cast<size_t>(id)] = true;
  std::deque<ConceptId> frontier{id};
  while (!frontier.empty()) {
    ConceptId c = frontier.front();
    frontier.pop_front();
    for (ConceptId child : children_[static_cast<size_t>(c)]) {
      if (!seen[static_cast<size_t>(child)]) {
        seen[static_cast<size_t>(child)] = true;
        result.push_back(child);
        frontier.push_back(child);
      }
    }
  }
  return result;
}

size_t Ontology::SubtreeSize(ConceptId id) const {
  return DescendantsOf(id).size();
}

ConceptId Ontology::FindByName(std::string_view name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<ConceptId>(i);
  }
  return kInvalidConcept;
}

ConceptId Ontology::FindByTerm(std::string_view term) const {
  auto it = term_to_concept_.find(ToLower(term));
  return it == term_to_concept_.end() ? kInvalidConcept : it->second;
}

const std::vector<ConceptId>& Ontology::topological_order() const {
  OSRS_CHECK(finalized_);
  return topo_order_;
}

std::string Ontology::Serialize() const {
  std::string out = "# osrs-ontology v1\n";
  for (size_t i = 0; i < names_.size(); ++i) {
    out += StrFormat("C\t%zu\t", i);
    out += names_[i];
    out += '\n';
  }
  for (size_t i = 0; i < names_.size(); ++i) {
    for (ConceptId child : children_[i]) {
      out += StrFormat("E\t%zu\t%d\n", i, child);
    }
  }
  // Deterministic synonym order for round-trip stability.
  std::vector<std::pair<std::string, ConceptId>> terms(
      term_to_concept_.begin(), term_to_concept_.end());
  std::sort(terms.begin(), terms.end());
  for (const auto& [term, id] : terms) {
    out += StrFormat("S\t%d\t", id);
    out += term;
    out += '\n';
  }
  return out;
}

Result<Ontology> Ontology::Deserialize(std::string_view text) {
  Ontology onto;
  for (const std::string& raw_line : Split(text, '\n')) {
    std::string_view line = Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 3) {
      return Status::InvalidArgument(
          StrFormat("malformed line: '%s'", std::string(line).c_str()));
    }
    const std::string& kind = fields[0];
    if (kind == "C") {
      ConceptId id = onto.AddConcept(fields[2]);
      if (std::to_string(id) != fields[1]) {
        return Status::InvalidArgument(
            StrFormat("non-sequential concept id '%s'", fields[1].c_str()));
      }
    } else if (kind == "E") {
      int64_t parent = 0, child = 0;
      if (!ParseInt64(fields[1], &parent) || !ParseInt64(fields[2], &child)) {
        return Status::InvalidArgument(
            StrFormat("malformed edge '%s'", std::string(line).c_str()));
      }
      OSRS_RETURN_IF_ERROR(onto.AddEdge(static_cast<ConceptId>(parent),
                                        static_cast<ConceptId>(child)));
    } else if (kind == "S") {
      int64_t id = 0;
      if (!ParseInt64(fields[1], &id)) {
        return Status::InvalidArgument(
            StrFormat("malformed synonym id '%s'", fields[1].c_str()));
      }
      if (id < 0 || id >= static_cast<int64_t>(onto.names_.size())) {
        return Status::InvalidArgument(
            StrFormat("synonym references unknown concept %lld",
                      static_cast<long long>(id)));
      }
      OSRS_RETURN_IF_ERROR(
          onto.AddSynonym(static_cast<ConceptId>(id), fields[2]));
    } else {
      return Status::InvalidArgument(
          StrFormat("unknown record kind '%s'", kind.c_str()));
    }
  }
  OSRS_RETURN_IF_ERROR(onto.Finalize());
  return onto;
}

std::string Ontology::ToTreeString(int max_depth) const {
  OSRS_CHECK(finalized_);
  std::string out;
  // DFS over the *first-parent* spanning tree so shared subtrees (DAG
  // diamonds) print once under their first parent and as "(+)" elsewhere.
  std::vector<bool> printed(names_.size(), false);
  struct Frame {
    ConceptId id;
    int depth;
  };
  std::vector<Frame> stack{{root(), 0}};
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    out += std::string(static_cast<size_t>(frame.depth) * 2, ' ');
    out += names_[frame.id];
    if (printed[frame.id]) {
      out += " (+)\n";
      continue;
    }
    out += '\n';
    printed[frame.id] = true;
    if (frame.depth >= max_depth) continue;
    const auto& kids = children_[frame.id];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, frame.depth + 1});
    }
  }
  return out;
}

}  // namespace osrs
