#ifndef OSRS_ONTOLOGY_ONTOLOGY_H_
#define OSRS_ONTOLOGY_ONTOLOGY_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"

namespace osrs {

/// Dense identifier of a concept within one Ontology instance.
using ConceptId = int32_t;

/// Sentinel for "no such concept".
inline constexpr ConceptId kInvalidConcept = -1;

/// One record of the precomputed ancestor closure: an ancestor (or the
/// concept itself at distance 0) together with the shortest upward hop
/// distance to it.
struct AncestorEntry {
  ConceptId concept_id;
  int32_t distance;
};

/// A rooted DAG of domain concepts (the paper's aspect hierarchy, §2).
///
/// Concepts are added with AddConcept, directed parent→child edges with
/// AddEdge, and optional surface-form synonyms (used by the dictionary
/// extractor, the MetaMap stand-in) with AddSynonym. After construction the
/// ontology must be Finalize()d, which validates that the graph is a DAG
/// with exactly one root and precomputes shortest root distances. All query
/// methods require a finalized ontology.
///
/// Distances follow the paper: d(c1, c2) is the length of the shortest
/// directed path from ancestor c1 down to descendant c2 (Definition 1).
class Ontology {
 public:
  Ontology() = default;

  // Copyable and movable: a finalized ontology is an immutable value object
  // shared by corpora and solvers.
  Ontology(const Ontology&) = default;
  Ontology& operator=(const Ontology&) = default;
  Ontology(Ontology&&) = default;
  Ontology& operator=(Ontology&&) = default;

  // -- Construction ---------------------------------------------------------

  /// Adds a concept and returns its id. Names need not be unique, but
  /// FindByName returns the first match.
  ConceptId AddConcept(std::string name);

  /// Adds a directed edge parent→child. Fails on out-of-range ids or
  /// self-loops; duplicate edges are ignored.
  Status AddEdge(ConceptId parent, ConceptId child);

  /// Registers a lowercase surface form for concept `id` (e.g. "battery
  /// life"). The same term may map to only one concept; re-registration for
  /// a different concept fails.
  Status AddSynonym(ConceptId id, std::string term);

  /// Validates the structure (single root, acyclic, all concepts reachable
  /// from the root) and precomputes depths. Must be called exactly once
  /// before any query.
  Status Finalize();

  bool finalized() const { return finalized_; }

  // -- Queries (require finalized()) ----------------------------------------

  size_t num_concepts() const { return names_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// The unique concept with no parents.
  ConceptId root() const;

  const std::string& name(ConceptId id) const;
  const std::vector<ConceptId>& parents(ConceptId id) const;
  const std::vector<ConceptId>& children(ConceptId id) const;

  /// True iff `ancestor` is `descendant` itself or lies on some directed
  /// path to it.
  bool IsAncestorOrSelf(ConceptId ancestor, ConceptId descendant) const;

  /// Shortest directed path length from `ancestor` down to `descendant`;
  /// 0 when equal, -1 when `ancestor` is not an ancestor-or-self.
  int AncestorDistance(ConceptId ancestor, ConceptId descendant) const;

  /// All ancestors of `id` (including itself at distance 0) with their
  /// shortest upward distances, sorted by (distance, concept id) — so
  /// non-decreasing distance, like a deterministic BFS. This is the inner
  /// loop of the §4.1 initialization: it is a span into the transitive
  /// closure precomputed at Finalize(), so a call does no traversal,
  /// hashing, or allocation.
  std::span<const AncestorEntry> AncestorsOf(ConceptId id) const;

  /// Copying variant of AncestorsOf kept for call sites that want to own
  /// the result; same contents and ordering.
  std::vector<std::pair<ConceptId, int>> AncestorsWithDistance(
      ConceptId id) const;

  /// Shortest distance from the root, precomputed at Finalize().
  int DepthFromRoot(ConceptId id) const;

  /// Maximum DepthFromRoot over all concepts (the Δ of Theorem 4).
  int max_depth() const { return max_depth_; }

  /// Mean number of ancestors (incl. self) per concept; the §4.1 linearity
  /// claim rests on this being small. O(1): derived from the closure CSR
  /// degrees.
  double AverageAncestorCount() const;

  /// All descendants of `id` (including itself), in BFS order. The set of
  /// concepts a summary pair on `id` can possibly cover.
  std::vector<ConceptId> DescendantsOf(ConceptId id) const;

  /// Number of descendants including self.
  size_t SubtreeSize(ConceptId id) const;

  /// True when `id` has no children.
  bool IsLeaf(ConceptId id) const { return children(id).empty(); }

  /// First concept whose name equals `name`, or kInvalidConcept.
  ConceptId FindByName(std::string_view name) const;

  /// Concept registered for the lowercase surface form `term`, or
  /// kInvalidConcept.
  ConceptId FindByTerm(std::string_view term) const;

  /// All registered (term, concept) entries; feed for the dictionary
  /// extractor.
  const std::unordered_map<std::string, ConceptId>& term_lexicon() const {
    return term_to_concept_;
  }

  /// Concepts in a topological order (parents before children).
  const std::vector<ConceptId>& topological_order() const;

  // -- Serialization --------------------------------------------------------

  /// Text serialization (line-oriented, tab-separated). Round-trips through
  /// Deserialize.
  std::string Serialize() const;

  /// Parses the Serialize() format and finalizes the result.
  static Result<Ontology> Deserialize(std::string_view text);

  /// Multi-line indented rendering of the hierarchy (used to print Fig. 3).
  std::string ToTreeString(int max_depth = 10) const;

 private:
  Status ValidateId(ConceptId id) const;

  bool finalized_ = false;
  size_t num_edges_ = 0;
  std::vector<std::string> names_;
  std::vector<std::vector<ConceptId>> parents_;
  std::vector<std::vector<ConceptId>> children_;
  std::unordered_map<std::string, ConceptId> term_to_concept_;
  ConceptId root_ = kInvalidConcept;
  std::vector<int> depth_from_root_;
  int max_depth_ = 0;
  std::vector<ConceptId> topo_order_;
  // Transitive ancestor closure in CSR form, filled at Finalize():
  // closure_entries_[closure_offsets_[id] .. closure_offsets_[id + 1])
  // holds every ancestor-or-self of `id` with its shortest hop distance,
  // sorted by (distance, concept id).
  std::vector<size_t> closure_offsets_;
  std::vector<AncestorEntry> closure_entries_;
};

}  // namespace osrs

#endif  // OSRS_ONTOLOGY_ONTOLOGY_H_
