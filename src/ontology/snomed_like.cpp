#include "ontology/snomed_like.h"

#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"

namespace osrs {
namespace {

// Name fragments combined into medical-sounding concept names, echoing the
// SNOMED style ("disorder of X", "X procedure", ...). Surface variety only;
// the algorithms never interpret the strings.
const char* const kBodySystems[] = {
    "cardiac",    "respiratory", "digestive",  "neurologic", "renal",
    "hepatic",    "vascular",    "endocrine",  "immune",     "skeletal",
    "muscular",   "dermal",      "ocular",     "auditory",   "thyroid",
    "pulmonary",  "gastric",     "intestinal", "cranial",    "spinal",
};
const char* const kConditions[] = {
    "disorder",     "syndrome",   "infection",  "inflammation", "lesion",
    "obstruction",  "deficiency", "hypertrophy", "stenosis",    "neoplasm",
    "degeneration", "trauma",     "dysfunction", "anomaly",     "pain",
};
const char* const kProcedures[] = {
    "examination", "screening",  "therapy",   "surgery",   "biopsy",
    "imaging",     "management", "injection", "transplant", "repair",
    "monitoring",  "counseling", "assessment", "evaluation", "consultation",
};
const char* const kQualifiers[] = {
    "acute",    "chronic",  "severe",   "mild",      "recurrent",
    "primary",  "secondary", "partial",  "complete",  "congenital",
    "atypical", "bilateral", "systemic", "localized", "postoperative",
};

std::string MakeConceptName(Rng& rng, int depth, int serial) {
  const char* system = kBodySystems[rng.NextUint64(std::size(kBodySystems))];
  const char* tail = rng.NextBernoulli(0.5)
                         ? kConditions[rng.NextUint64(std::size(kConditions))]
                         : kProcedures[rng.NextUint64(std::size(kProcedures))];
  std::string name;
  if (depth >= 3) {
    name += kQualifiers[rng.NextUint64(std::size(kQualifiers))];
    name += ' ';
  }
  name += system;
  name += ' ';
  name += tail;
  (void)serial;
  return name;
}

}  // namespace

Ontology BuildSnomedLikeOntology(const SnomedLikeOptions& options) {
  OSRS_CHECK_GE(options.num_concepts, 2);
  OSRS_CHECK_GE(options.max_depth, 1);
  OSRS_CHECK_GE(options.synonyms_per_concept, 1);
  Rng rng(options.seed);
  Ontology onto;

  ConceptId root = onto.AddConcept("clinical finding");
  OSRS_CHECK(onto.AddSynonym(root, "clinical finding").ok());

  // Concepts are assigned to levels 1..max_depth with geometrically growing
  // level sizes, mimicking the fan-out of real medical ontologies.
  std::vector<std::vector<ConceptId>> levels(
      static_cast<size_t>(options.max_depth) + 1);
  levels[0].push_back(root);

  int remaining = options.num_concepts - 1;
  std::vector<double> level_weight(static_cast<size_t>(options.max_depth) + 1,
                                   0.0);
  double w = 1.0;
  double total_w = 0.0;
  for (int d = 1; d <= options.max_depth; ++d) {
    w *= 1.9;
    level_weight[static_cast<size_t>(d)] = w;
    total_w += w;
  }

  int serial = 0;
  std::unordered_set<std::string> used_names;
  for (int d = 1; d <= options.max_depth; ++d) {
    int level_count;
    if (d == options.max_depth) {
      level_count = remaining;
    } else {
      level_count = static_cast<int>(
          static_cast<double>(options.num_concepts - 1) *
          level_weight[static_cast<size_t>(d)] / total_w);
      level_count = std::min(level_count, remaining);
      // Keep at least one concept per level so the DAG reaches max_depth.
      if (level_count == 0 && remaining > 0) level_count = 1;
    }
    remaining -= level_count;
    const std::vector<ConceptId>& above = levels[static_cast<size_t>(d - 1)];
    for (int i = 0; i < level_count; ++i) {
      // Draw fragment combinations until unused; fall back to a numeric
      // variant when the fragment space is exhausted at this depth.
      std::string name;
      for (int attempt = 0; attempt < 12; ++attempt) {
        name = MakeConceptName(rng, d, serial);
        if (used_names.insert(name).second) break;
        name.clear();
      }
      if (name.empty()) {
        do {
          ++serial;
          name = MakeConceptName(rng, d, serial) +
                 StrFormat(" type %d", serial);
        } while (!used_names.insert(name).second);
      }
      ConceptId id = onto.AddConcept(name);
      ConceptId parent = above[rng.NextUint64(above.size())];
      OSRS_CHECK(onto.AddEdge(parent, id).ok());
      if (d >= 2 && above.size() >= 2 &&
          rng.NextBernoulli(options.multi_parent_prob)) {
        ConceptId second = above[rng.NextUint64(above.size())];
        if (second != parent) {
          OSRS_CHECK(onto.AddEdge(second, id).ok());
        }
      }
      // Synonyms: the name itself plus abbreviated variants.
      OSRS_CHECK(onto.AddSynonym(id, onto.name(id)).ok());
      for (int s = 1; s < options.synonyms_per_concept; ++s) {
        OSRS_CHECK(
            onto.AddSynonym(id, StrFormat("umls c%07d v%d", id, s)).ok());
      }
      levels[static_cast<size_t>(d)].push_back(id);
    }
    if (remaining == 0 && d < options.max_depth) {
      // All concepts placed early; stop growing levels.
      break;
    }
  }

  OSRS_CHECK_MSG(onto.Finalize().ok(), "generated ontology must be a DAG");
  return onto;
}

}  // namespace osrs
