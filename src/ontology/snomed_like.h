#ifndef OSRS_ONTOLOGY_SNOMED_LIKE_H_
#define OSRS_ONTOLOGY_SNOMED_LIKE_H_

#include <cstdint>

#include "ontology/ontology.h"

namespace osrs {

/// Parameters of the synthetic SNOMED-CT-like medical ontology.
///
/// SNOMED CT itself is a licensed 300k+ concept DAG; the paper uses it as
/// the concept hierarchy for doctor reviews. This generator reproduces the
/// structural properties the algorithms depend on: a rooted DAG, shallow
/// average ancestor counts (§4.1's linear-initialization claim), moderate
/// depth (the Δ of Theorem 4), and occasional multi-parent concepts
/// (diamonds), with medical-sounding names and extraction synonyms.
struct SnomedLikeOptions {
  /// Total concepts, including the root. The default keeps experiments fast
  /// while remaining far larger than the per-item pair sets.
  int num_concepts = 5000;
  /// Target maximum depth of the DAG.
  int max_depth = 8;
  /// Probability that a non-top-level concept gets a second parent picked
  /// from the previous level (creates DAG diamonds, not just a tree).
  double multi_parent_prob = 0.08;
  /// Number of surface-form synonyms per concept (>= 1; the first is the
  /// concept name itself).
  int synonyms_per_concept = 2;
  /// RNG seed; generation is fully deterministic given the options.
  uint64_t seed = 42;
};

/// Builds the synthetic SNOMED-like ontology (finalized).
Ontology BuildSnomedLikeOntology(const SnomedLikeOptions& options);

}  // namespace osrs

#endif  // OSRS_ONTOLOGY_SNOMED_LIKE_H_
