#include "ontology/cellphone_hierarchy.h"

#include <string>
#include <vector>

#include "common/logging.h"

namespace osrs {
namespace {

struct AspectSpec {
  const char* name;
  const char* parent;                 // nullptr for children of the root
  std::vector<const char*> synonyms;  // in addition to the name itself
};

// The Fig. 3 hierarchy: top-level aspect groups under "phone", each with its
// popular sub-aspects (the 100 most popular Double-Propagation extractions).
const AspectSpec kAspects[] = {
    // Display group.
    {"screen", nullptr, {"display"}},
    {"screen size", "screen", {"display size"}},
    {"screen resolution", "screen", {"resolution"}},
    {"screen brightness", "screen", {"brightness"}},
    {"screen color", "screen", {"display color", "color accuracy"}},
    {"touchscreen", "screen", {"touch screen", "touch"}},
    {"glass", "screen", {"gorilla glass", "screen protector"}},

    // Battery group.
    {"battery", nullptr, {}},
    {"battery life", "battery", {"battery lifetime"}},
    {"charging", "battery", {"charge", "charging speed"}},
    {"charger", "charging", {"charging cable", "power adapter"}},
    {"wireless charging", "charging", {}},
    {"battery capacity", "battery", {"mah"}},

    // Camera group.
    {"camera", nullptr, {}},
    {"photo quality", "camera", {"picture quality", "photos", "pictures"}},
    {"video", "camera", {"video quality", "video recording"}},
    {"front camera", "camera", {"selfie camera", "selfie"}},
    {"rear camera", "camera", {"back camera", "main camera"}},
    {"flash", "camera", {"camera flash"}},
    {"zoom", "camera", {"optical zoom"}},
    {"low light", "photo quality", {"night mode", "night shots"}},

    // Audio group.
    {"sound", nullptr, {"audio"}},
    {"speaker", "sound", {"speakers", "loudspeaker"}},
    {"volume", "sound", {"loudness"}},
    {"headphone jack", "sound", {"headphone", "audio jack"}},
    {"microphone", "sound", {"mic"}},
    {"call quality", "sound", {"voice quality", "calls"}},

    // Performance group.
    {"performance", nullptr, {}},
    {"speed", "performance", {"fast", "responsiveness"}},
    {"processor", "performance", {"cpu", "chipset", "snapdragon"}},
    {"memory", "performance", {"ram"}},
    {"storage", "performance", {"internal storage", "capacity"}},
    {"sd card", "storage", {"memory card", "microsd"}},
    {"gaming", "performance", {"games"}},
    {"multitasking", "performance", {}},
    {"lag", "performance", {"lagging", "stutter"}},

    // Design group.
    {"design", nullptr, {"look", "style"}},
    {"size", "design", {"dimensions"}},
    {"weight", "design", {"heft"}},
    {"color", "design", {"colour"}},
    {"build quality", "design", {"build", "construction"}},
    {"button", "design", {"buttons", "power button", "volume button"}},
    {"case", "design", {"back cover", "cover"}},
    {"durability", "design", {"sturdiness"}},
    {"fingerprint sensor", "design", {"fingerprint reader", "fingerprint"}},

    // Software group.
    {"software", nullptr, {}},
    {"operating system", "software", {"os", "android", "android version"}},
    {"apps", "software", {"applications", "app"}},
    {"bloatware", "apps", {"preinstalled apps"}},
    {"updates", "software", {"software update", "security update"}},
    {"interface", "software", {"ui", "user interface", "launcher"}},
    {"bugs", "software", {"glitches", "crashes"}},

    // Connectivity group.
    {"connectivity", nullptr, {}},
    {"wifi", "connectivity", {"wi-fi", "wireless"}},
    {"bluetooth", "connectivity", {}},
    {"signal", "connectivity", {"reception", "cell signal"}},
    {"sim card", "connectivity", {"sim", "dual sim"}},
    {"gps", "connectivity", {"navigation"}},
    {"network", "connectivity", {"4g", "lte", "carrier"}},
    {"nfc", "connectivity", {}},
    {"unlocked", "network", {"unlock", "carrier unlock"}},

    // Price group.
    {"price", nullptr, {"cost"}},
    {"value", "price", {"value for money", "bang for the buck"}},
    {"deal", "price", {"bargain", "discount"}},

    // Service group.
    {"service", nullptr, {"customer service"}},
    {"shipping", "service", {"delivery", "packaging"}},
    {"warranty", "service", {"guarantee"}},
    {"seller", "service", {"vendor", "store"}},
    {"support", "service", {"tech support", "customer support"}},
    {"return", "service", {"refund", "return policy"}},

    // Accessories group.
    {"accessories", nullptr, {}},
    {"earphones", "accessories", {"earbuds", "headset"}},
    {"cable", "accessories", {"usb cable"}},
    {"manual", "accessories", {"instructions", "documentation"}},
};

}  // namespace

Ontology BuildCellPhoneHierarchy() {
  Ontology onto;
  ConceptId root = onto.AddConcept("phone");
  OSRS_CHECK(onto.AddSynonym(root, "phone").ok());
  OSRS_CHECK(onto.AddSynonym(root, "smartphone").ok());
  OSRS_CHECK(onto.AddSynonym(root, "device").ok());
  for (const AspectSpec& spec : kAspects) {
    ConceptId id = onto.AddConcept(spec.name);
    ConceptId parent =
        spec.parent == nullptr ? root : onto.FindByName(spec.parent);
    OSRS_CHECK_MSG(parent != kInvalidConcept,
                   "unknown parent '" << spec.parent << "' for aspect '"
                                      << spec.name << "'");
    OSRS_CHECK(onto.AddEdge(parent, id).ok());
    OSRS_CHECK(onto.AddSynonym(id, spec.name).ok());
    for (const char* syn : spec.synonyms) {
      OSRS_CHECK(onto.AddSynonym(id, syn).ok());
    }
  }
  OSRS_CHECK_MSG(onto.Finalize().ok(), "cell phone hierarchy must be a DAG");
  return onto;
}

}  // namespace osrs
