#ifndef OSRS_API_REVIEW_SUMMARIZER_H_
#define OSRS_API_REVIEW_SUMMARIZER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/execution_budget.h"
#include "common/status.h"
#include "core/model.h"
#include "obs/solver_stats.h"
#include "ontology/ontology.h"

namespace osrs {

/// Monotonic corpus-version counter. Every mutation of the served corpus
/// (a review added or removed, a re-annotation) bumps it; consumers that
/// key derived artifacts by the epoch — the serving layer's summary cache
/// today, the planned incremental engine's snapshots tomorrow — treat any
/// entry carrying an older epoch as stale without having to diff the
/// corpus itself. Thread-safe; bumping while solves are in flight is fine
/// (in-flight results are stamped with the epoch they started under).
///
/// Intentionally a bare atomic rather than a common/sync.h Mutex-guarded
/// counter: there is no multi-field invariant to protect, and the acq_rel
/// bump / acquire read pair is the whole ordering contract — a consumer
/// that observes epoch N also observes every corpus write made before
/// the bump to N. Atomics sit outside Clang's capability analysis by
/// design (see DESIGN.md, "Static analysis v2").
class CorpusEpoch {
 public:
  CorpusEpoch() = default;
  CorpusEpoch(const CorpusEpoch&) = delete;
  CorpusEpoch& operator=(const CorpusEpoch&) = delete;

  uint64_t value() const { return epoch_.load(std::memory_order_acquire); }

  /// Advances the epoch; returns the new value. Safe from any thread.
  uint64_t Bump() {
    return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  /// Sets the counter to a recovered value. Only for startup recovery,
  /// before any consumer can observe the epoch — epochs must never move
  /// backwards once serving begins (cache keys and journal records both
  /// assume monotonicity).
  void Restore(uint64_t value) {
    epoch_.store(value, std::memory_order_release);
  }

 private:
  std::atomic<uint64_t> epoch_{0};
};

/// Which §4 algorithm the facade runs.
enum class SummaryAlgorithm {
  kGreedy,              // Algorithm 2 (the paper's recommended default)
  kGreedyLazy,          // lazy-heap variant, same guarantee
  kIlp,                 // exact §4.2 (bundled branch-and-bound)
  kRandomizedRounding,  // Algorithm 1 over the LP relaxation
  kLocalSearch,         // greedy + swap polish (extension, see solver/)
};

const char* SummaryAlgorithmToString(SummaryAlgorithm algorithm);

/// Facade configuration.
struct ReviewSummarizerOptions {
  /// Sentiment threshold ε of Definition 1 (0.5 = the elbow choice, §5.3).
  double epsilon = 0.5;
  /// When set, ε is chosen per item by the §5.3 elbow method over a
  /// default grid instead of using `epsilon`. Costs one greedy run per
  /// grid point before the real solve.
  bool auto_epsilon = false;
  SummaryAlgorithm algorithm = SummaryAlgorithm::kGreedy;
  SummaryGranularity granularity = SummaryGranularity::kSentences;
  /// Worker threads for coverage-graph construction (§4.1): targets are
  /// sharded across threads with per-thread edge buffers, and the merged
  /// graph is identical at every setting. 1 (the default) builds serially;
  /// 0 uses the hardware concurrency; negative values are an
  /// InvalidArgument error at Summarize time. Worth raising only for large
  /// items — graph construction is a small fraction of a typical solve.
  int graph_build_threads = 1;
  /// Upper bound on the bytes the item's coverage graph may occupy; 0 (the
  /// default) means unlimited. The builder's counting pass knows the exact
  /// edge total before allocating, so an over-budget item fails fast with
  /// kResourceExhausted — a retryable code, so a BatchSummarizer
  /// RetryPolicy will re-attempt it (useful when the pressure is transient)
  /// and otherwise the item is isolated instead of OOM-killing the process.
  size_t max_memory_bytes = 0;
  /// Seed of the randomized-rounding draw (unused by other algorithms).
  /// Fallback attempts reseed deterministically (seed + attempt index) so a
  /// retried randomized rounding draws a fresh sample.
  uint64_t seed = 7;

  /// Wall-clock budget per Summarize call in milliseconds; <= 0 disables
  /// the deadline. When the deadline trips mid-solve the facade degrades
  /// along `fallback_chain` instead of failing (see below).
  double deadline_ms = 0.0;
  /// Deterministic work budget per solve attempt (same solver-defined unit
  /// as SummaryResult::work: B&B nodes, simplex iterations, greedy key
  /// updates, ...); <= 0 means unlimited. Unlike the wall-clock deadline
  /// this is reproducible, so tests can exercise degradation
  /// deterministically.
  int64_t max_solver_work = 0;
  /// Optional cooperative cancellation; the flag must outlive the call.
  /// Cancellation always surfaces as a kCancelled error — it is the one
  /// budget trip the fallback chain does not absorb.
  const CancellationFlag* cancellation = nullptr;
  /// When true, a ModelValidator pass (see validate/model_validator.h)
  /// runs before solving: the item's pairs, the sentence grouping, and the
  /// solver configuration are checked against the §2 model invariants.
  /// Error-severity findings fail the call with kInvalidArgument carrying
  /// the rendered report; warning findings are attached to
  /// ItemSummary::validation_warnings. Off by default because a trusted
  /// serving path should not pay the extra corpus walk per request.
  bool strict_validation = false;
  /// When true (the default) each Summarize call installs a per-solve
  /// trace (see obs/trace.h) and returns phase timings plus solver
  /// progress counters on ItemSummary::stats. Costs a handful of clock
  /// reads per solve; set false (or build the tree with -DOSRS_OBS=OFF)
  /// to skip even that.
  bool collect_stats = true;
  /// Algorithms tried, in order, after the primary `algorithm` trips its
  /// budget (or fails for any reason other than cancellation / invalid
  /// arguments). Entries are attempted verbatim — repeating the primary
  /// algorithm retries it (useful for randomized rounding, which reseeds
  /// per attempt). The final fallback attempt runs with only the
  /// cancellation flags attached, so unless cancelled the facade always
  /// returns a summary, flagged `degraded`.
  std::vector<SummaryAlgorithm> fallback_chain = {SummaryAlgorithm::kGreedy};
};

/// 64-bit fingerprint of every option field that can change the *outcome*
/// of a full-budget solve: epsilon / auto_epsilon, algorithm, granularity,
/// seed, max_solver_work, strict_validation, max_memory_bytes, and the
/// fallback chain. Runtime-only knobs that are proven not to affect the
/// solution — deadline_ms, cancellation, collect_stats, and
/// graph_build_threads (the sharded builder is bit-identical at any thread
/// count) — are deliberately excluded, so a cache keyed by this hash keeps
/// its hits across deployment-tuning changes. Two option structs with the
/// same fingerprint produce bit-identical non-degraded summaries for the
/// same item and k.
uint64_t OptionsFingerprint(const ReviewSummarizerOptions& options);

/// One representative in a summary.
struct SummaryEntry {
  /// Human-readable rendering: "concept = +0.65" for pair granularity, the
  /// sentence text for sentences, the first sentence + review index for
  /// reviews.
  std::string display;
  /// The underlying pair (pair granularity) or the first pair of the
  /// selected sentence/review.
  ConceptSentimentPair pair;
  int review_index = -1;
  int sentence_index = -1;  // -1 at pair/review granularity
};

/// A computed summary plus diagnostics.
struct ItemSummary {
  std::vector<SummaryEntry> entries;
  /// Definition 2 coverage cost of the selection.
  double cost = 0.0;
  /// Solver wall-clock seconds (excludes graph construction).
  double solver_seconds = 0.0;
  /// The ε actually used (differs from the configured one under
  /// auto_epsilon).
  double epsilon = 0.0;
  size_t num_pairs = 0;
  size_t num_candidates = 0;
  size_t num_edges = 0;

  /// True when the summary is not the configured algorithm's full-budget
  /// answer: a budget tripped and either a fallback algorithm produced the
  /// result or the primary stopped early with its best incumbent.
  bool degraded = false;
  /// The algorithm that produced `entries` (differs from the configured
  /// one after a fallback).
  SummaryAlgorithm algorithm_used = SummaryAlgorithm::kGreedy;
  /// Why degradation happened (kOk when `degraded` is false): typically
  /// kDeadlineExceeded or kResourceExhausted.
  StatusCode stop_reason = StatusCode::kOk;
  /// Total wall-clock milliseconds spent in Summarize, across every
  /// attempt (includes graph construction, unlike `solver_seconds`).
  double budget_spent_ms = 0.0;
  /// Warning-severity findings of the strict-validation pass, rendered as
  /// "warning OSRS-XXX-NNN [location]: message" lines. Always empty unless
  /// ReviewSummarizerOptions::strict_validation is set.
  std::vector<std::string> validation_warnings;
  /// Per-phase timings and solver progress counters of this solve (empty
  /// when ReviewSummarizerOptions::collect_stats is false or the tree was
  /// built with -DOSRS_OBS=OFF).
  obs::SolverStats stats;
  /// Transient-failure retries this summary consumed before succeeding.
  /// Always 0 from ReviewSummarizer::Summarize itself — retrying is
  /// BatchSummarizer's job (see BatchSummarizerOptions::retry_policy),
  /// which stamps the count on the entry it returns.
  int retries = 0;
  /// Log-correlation identity of the serving request that produced this
  /// summary (see obs/request_trace.h). Stamped by SummaryServer; 0 for
  /// summaries computed outside the serving layer.
  uint64_t request_id = 0;
  uint64_t trace_id = 0;

  /// Compact JSON rendering (entries, cost, diagnostics) for tooling.
  ///
  /// Diagnostic fields live under one "diagnostics" object (degraded,
  /// algorithm, stop_reason, budget_spent_ms, solver_seconds, request_id,
  /// trace_id — the hex log-correlation id — validation_warnings, stats). The pre-existing top-level copies of
  /// degraded / algorithm / stop_reason / budget_spent_ms /
  /// validation_warnings remain for one release as deprecated aliases —
  /// see README.md ("Observability") for the migration note.
  std::string ToJson() const;
};

/// The library's top-level entry point: reviews of one item in, the k most
/// representative pairs / sentences / reviews out, using the ontology- and
/// sentiment-aware coverage framework of §2 with the §4 algorithms.
///
/// Typical use:
///
///   Ontology phones = BuildCellPhoneHierarchy();
///   ReviewSummarizer summarizer(&phones, {});
///   auto summary = summarizer.Summarize(item, /*k=*/5);
///   for (const auto& entry : summary->entries) std::puts(entry.display.c_str());
///
/// Items must carry concept-sentiment pairs; run ReviewAnnotator first for
/// raw text. The ontology must outlive the summarizer.
class ReviewSummarizer {
 public:
  ReviewSummarizer(const Ontology* ontology,
                   ReviewSummarizerOptions options = {});

  /// Summarizes `item` with (up to) k representatives. k larger than the
  /// candidate count is truncated; k < 0 is an error, as are non-finite or
  /// out-of-range sentiments anywhere in the item.
  ///
  /// Budgets come from the options (deadline_ms / max_solver_work /
  /// cancellation). When a budget trips the facade walks `fallback_chain`;
  /// only cancellation (kCancelled), invalid input, or an already-expired
  /// budget at entry surface as errors.
  Result<ItemSummary> Summarize(const Item& item, int k) const;

  /// As above, additionally tightened by `external` — used by
  /// BatchSummarizer to impose a whole-batch deadline and cancellation on
  /// top of the per-item options.
  Result<ItemSummary> Summarize(const Item& item, int k,
                                const ExecutionBudget& external) const;

  const ReviewSummarizerOptions& options() const { return options_; }

 private:
  const Ontology* ontology_;
  ReviewSummarizerOptions options_;
};

}  // namespace osrs

#endif  // OSRS_API_REVIEW_SUMMARIZER_H_
