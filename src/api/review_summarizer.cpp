#include "api/review_summarizer.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/distance.h"
#include "coverage/item_graph.h"
#include "eval/elbow.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "solver/greedy.h"
#include "solver/ilp_summarizer.h"
#include "solver/local_search.h"
#include "solver/randomized_rounding.h"
#include "solver/summarizer.h"
#include "validate/model_validator.h"

namespace osrs {

const char* SummaryAlgorithmToString(SummaryAlgorithm algorithm) {
  switch (algorithm) {
    case SummaryAlgorithm::kGreedy:
      return "Greedy";
    case SummaryAlgorithm::kGreedyLazy:
      return "Greedy(lazy)";
    case SummaryAlgorithm::kIlp:
      return "ILP";
    case SummaryAlgorithm::kRandomizedRounding:
      return "RR";
    case SummaryAlgorithm::kLocalSearch:
      return "Greedy+swap";
  }
  return "unknown";
}

namespace {

std::unique_ptr<Summarizer> MakeSolver(SummaryAlgorithm algorithm,
                                       uint64_t seed) {
  switch (algorithm) {
    case SummaryAlgorithm::kGreedy:
      return std::make_unique<GreedySummarizer>();
    case SummaryAlgorithm::kGreedyLazy: {
      GreedyOptions greedy_options;
      greedy_options.heap = GreedyOptions::Heap::kLazy;
      return std::make_unique<GreedySummarizer>(greedy_options);
    }
    case SummaryAlgorithm::kIlp:
      return std::make_unique<IlpSummarizer>();
    case SummaryAlgorithm::kRandomizedRounding: {
      RandomizedRoundingOptions rr_options;
      rr_options.seed = seed;
      return std::make_unique<RandomizedRoundingSummarizer>(rr_options);
    }
    case SummaryAlgorithm::kLocalSearch:
      return std::make_unique<LocalSearchSummarizer>();
  }
  return std::make_unique<GreedySummarizer>();
}

Status StrictValidationError(const ValidationReport& report) {
  return Status::InvalidArgument("strict validation failed:\n" +
                                 report.ToString());
}

obs::Counter* SummariesCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("osrs.api.summaries");
  return counter;
}

obs::Histogram* SolveMsHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "osrs.api.solve_ms",
          {0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000,
           2500, 5000});
  return histogram;
}

/// splitmix64 finalizer, the same full-avalanche mix the retry jitter
/// uses: each field is mixed into the running hash so field order and
/// adjacent-value collisions cannot cancel out.
uint64_t Mix64(uint64_t h) {
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9E3779B97F4A7C15ull + (seed << 6)));
}

uint64_t BitsOf(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

}  // namespace

uint64_t OptionsFingerprint(const ReviewSummarizerOptions& options) {
  uint64_t h = 0x05B5E0A1C0FFEE01ull;  // fingerprint-format version tag
  h = HashCombine(h, BitsOf(options.epsilon));
  h = HashCombine(h, options.auto_epsilon ? 1 : 0);
  h = HashCombine(h, static_cast<uint64_t>(options.algorithm));
  h = HashCombine(h, static_cast<uint64_t>(options.granularity));
  h = HashCombine(h, options.seed);
  h = HashCombine(h, static_cast<uint64_t>(options.max_solver_work));
  h = HashCombine(h, options.strict_validation ? 1 : 0);
  h = HashCombine(h, static_cast<uint64_t>(options.max_memory_bytes));
  h = HashCombine(h, options.fallback_chain.size());
  for (SummaryAlgorithm fallback : options.fallback_chain) {
    h = HashCombine(h, static_cast<uint64_t>(fallback));
  }
  return h;
}

std::string ItemSummary::ToJson() const {
  std::string warnings_json = "[";
  for (size_t i = 0; i < validation_warnings.size(); ++i) {
    if (i > 0) warnings_json += ',';
    warnings_json += '"';
    warnings_json += JsonEscape(validation_warnings[i]);
    warnings_json += '"';
  }
  warnings_json += ']';

  std::string out = "{";
  // The top-level degraded / algorithm / stop_reason / budget_spent_ms /
  // validation_warnings keys are deprecated aliases of the "diagnostics"
  // object below, kept for one release (see README.md, "Observability").
  out += StrFormat(
      "\"cost\":%.6g,\"epsilon\":%.6g,\"solver_seconds\":%.6g,"
      "\"num_pairs\":%zu,\"num_candidates\":%zu,\"num_edges\":%zu,"
      "\"degraded\":%s,\"algorithm\":\"%s\",\"stop_reason\":\"%s\","
      "\"budget_spent_ms\":%.3f,",
      cost, epsilon, solver_seconds, num_pairs, num_candidates, num_edges,
      degraded ? "true" : "false",
      JsonEscape(SummaryAlgorithmToString(algorithm_used)).c_str(),
      StatusCodeToString(stop_reason), budget_spent_ms);
  out += StrFormat(
      "\"diagnostics\":{\"degraded\":%s,\"algorithm\":\"%s\","
      "\"stop_reason\":\"%s\",\"budget_spent_ms\":%.3f,"
      "\"solver_seconds\":%.6g,\"retries\":%d,"
      "\"request_id\":%llu,\"trace_id\":\"%016llx\","
      "\"validation_warnings\":%s,\"stats\":%s},",
      degraded ? "true" : "false",
      JsonEscape(SummaryAlgorithmToString(algorithm_used)).c_str(),
      StatusCodeToString(stop_reason), budget_spent_ms, solver_seconds,
      retries, static_cast<unsigned long long>(request_id),
      static_cast<unsigned long long>(trace_id), warnings_json.c_str(),
      stats.ToJson().c_str());
  out += "\"entries\":[";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out += ',';
    out += StrFormat(
        "{\"display\":\"%s\",\"review\":%d,\"sentence\":%d,"
        "\"concept\":%d,\"sentiment\":%.6g}",
        JsonEscape(entries[i].display).c_str(), entries[i].review_index,
        entries[i].sentence_index, entries[i].pair.concept_id,
        entries[i].pair.sentiment);
  }
  out += "],\"validation_warnings\":";
  out += warnings_json;
  out += '}';
  return out;
}

ReviewSummarizer::ReviewSummarizer(const Ontology* ontology,
                                   ReviewSummarizerOptions options)
    : ontology_(ontology), options_(options) {
  OSRS_CHECK(ontology != nullptr);
  OSRS_CHECK(ontology->finalized());
  OSRS_CHECK_GT(options.epsilon, 0.0);
}

Result<ItemSummary> ReviewSummarizer::Summarize(const Item& item,
                                                int k) const {
  return Summarize(item, k, ExecutionBudget::Unlimited());
}

Result<ItemSummary> ReviewSummarizer::Summarize(
    const Item& item, int k, const ExecutionBudget& external) const {
  if (k < 0) return Status::InvalidArgument(StrFormat("k=%d negative", k));
  if (options_.graph_build_threads < 0) {
    return Status::InvalidArgument(StrFormat(
        "graph_build_threads=%d negative", options_.graph_build_threads));
  }

  // Strict mode front-loads the corpus-integrity checks so a dangling
  // concept reference surfaces as a structured report instead of tripping
  // an OSRS_CHECK deep inside the ontology walk.
  ModelValidator validator;
  ValidationReport strict_report = validator.MakeReport();
  if (options_.strict_validation) {
    validator.CheckItem(item, ontology_->num_concepts(), &strict_report);
    if (!strict_report.ok()) return StrictValidationError(strict_report);
  }
  OSRS_RETURN_IF_ERROR(ValidateItem(item));

  Stopwatch total_watch;
  ExecutionBudget budget;
  if (options_.deadline_ms > 0.0) budget.SetDeadlineMs(options_.deadline_ms);
  if (options_.max_solver_work > 0) budget.SetMaxWork(options_.max_solver_work);
  budget.AddCancellation(options_.cancellation);
  budget = budget.TightenedBy(external);
  // A budget already expired at entry (e.g. a batch deadline that tripped
  // before this item was claimed) is an error, not a degradation: no work
  // has been done, so there is nothing to degrade to.
  OSRS_RETURN_IF_ERROR(budget.Check());

  // Everything below (elbow probing, graph construction, every solver
  // attempt) records into this call's trace; when collect_stats is off the
  // currently installed trace — usually none — stays in effect.
  obs::SolveTrace trace;
  obs::Tracer::Scope trace_scope(options_.collect_stats ? &trace
                                                        : obs::Tracer::current());

  double epsilon = options_.epsilon;
  if (options_.auto_epsilon) {
    auto pairs = PairsOf(CollectPairs(item));
    if (!pairs.empty()) {
      ElbowResult elbow = SelectEpsilonByElbow(
          *ontology_, pairs, std::max(1, k),
          {0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9, 1.2, 1.6, 2.0});
      epsilon = elbow.chosen_epsilon;
    }
  }

  PairDistance distance(ontology_, epsilon);
  CoverageBuildOptions build_options;
  build_options.num_threads = options_.graph_build_threads;
  build_options.max_memory_bytes = options_.max_memory_bytes;
  Result<ItemGraph> built =
      TryBuildItemGraph(distance, item, options_.granularity, build_options);
  // Graph construction failures (memory budget, injected faults) have no
  // partial result to degrade to; surface them for the caller's retry
  // policy — kResourceExhausted and injected codes are retryable.
  OSRS_RETURN_IF_ERROR(built.status());
  ItemGraph item_graph = std::move(built).value();
  int effective_k = std::min<int>(k, item_graph.graph.num_candidates());

  if (options_.strict_validation) {
    validator.CheckSolverConfig(
        k, epsilon, static_cast<size_t>(item_graph.graph.num_candidates()),
        &strict_report);
    validator.CheckGroups(item_graph.groups, item_graph.occurrences.size(),
                          &strict_report);
    if (!strict_report.ok()) return StrictValidationError(strict_report);
  }

  // The primary algorithm followed by the fallback chain, attempted
  // verbatim (repeats retry with a fresh seed). Each attempt gets the full
  // work budget; the wall-clock deadline is absolute and therefore shared,
  // which is why the last fallback drops everything but cancellation.
  std::vector<SummaryAlgorithm> attempts;
  attempts.reserve(1 + options_.fallback_chain.size());
  attempts.push_back(options_.algorithm);
  attempts.insert(attempts.end(), options_.fallback_chain.begin(),
                  options_.fallback_chain.end());

  SummaryResult result;
  SummaryAlgorithm algorithm_used = options_.algorithm;
  bool solved = false;
  bool degraded = false;
  StatusCode stop_reason = StatusCode::kOk;
  Status last_error = Status::OK();

  for (size_t attempt = 0; attempt < attempts.size(); ++attempt) {
    const bool final_fallback = attempt > 0 && attempt + 1 == attempts.size();
    const ExecutionBudget attempt_budget =
        final_fallback ? budget.CancellationOnly() : budget;
    std::unique_ptr<Summarizer> solver =
        MakeSolver(attempts[attempt], options_.seed + attempt);
    obs::TraceSpan attempt_span(obs::Phase::kSolveAttempt);
    auto attempt_result =
        solver->Summarize(item_graph.graph, effective_k, attempt_budget);
    if (attempt_result.ok()) {
      result = std::move(*attempt_result);
      algorithm_used = attempts[attempt];
      solved = true;
      if (result.approximate && attempt + 1 < attempts.size()) {
        // A budget-tripped incumbent with fallbacks still in the chain:
        // keep it as the answer of record but let a later attempt replace
        // it with a complete solution.
        degraded = true;
        if (stop_reason == StatusCode::kOk) stop_reason = result.stop_reason;
        continue;
      }
      break;
    }
    last_error = attempt_result.status();
    if (last_error.code() == StatusCode::kCancelled ||
        last_error.code() == StatusCode::kInvalidArgument) {
      return last_error;  // fallbacks never absorb these
    }
    degraded = true;
    if (stop_reason == StatusCode::kOk) stop_reason = last_error.code();
  }
  if (!solved) return last_error;
  if (result.approximate) {
    degraded = true;
    if (stop_reason == StatusCode::kOk) stop_reason = result.stop_reason;
  }

  ItemSummary summary;
  summary.cost = result.cost;
  summary.solver_seconds = result.seconds;
  summary.epsilon = epsilon;
  summary.degraded = degraded;
  summary.algorithm_used = algorithm_used;
  summary.stop_reason = stop_reason;
  summary.num_pairs = item_graph.occurrences.size();
  // Any finding still in the report passed the error gates above, so all
  // that is left to surface are warnings.
  for (const ValidationFinding& finding : strict_report.findings()) {
    summary.validation_warnings.push_back(finding.ToString());
  }
  summary.num_candidates =
      static_cast<size_t>(item_graph.graph.num_candidates());
  summary.num_edges = item_graph.graph.num_edges();

  for (int candidate : result.selected) {
    SummaryEntry entry;
    if (options_.granularity == SummaryGranularity::kPairs) {
      const PairOccurrence& occ =
          item_graph.occurrences[static_cast<size_t>(candidate)];
      entry.pair = occ.pair;
      entry.review_index = occ.review_index;
      entry.sentence_index = occ.sentence_index;
      entry.display =
          StrFormat("%s = %+.2f", ontology_->name(occ.pair.concept_id).c_str(),
                    occ.pair.sentiment);
    } else {
      auto [review_index, sentence_index] =
          item_graph.group_origin[static_cast<size_t>(candidate)];
      entry.review_index = review_index;
      entry.sentence_index = sentence_index;
      const Review& review =
          item.reviews[static_cast<size_t>(review_index)];
      const auto& members =
          item_graph.groups[static_cast<size_t>(candidate)];
      if (!members.empty()) {
        entry.pair =
            item_graph.occurrences[static_cast<size_t>(members.front())].pair;
      }
      if (options_.granularity == SummaryGranularity::kSentences) {
        entry.display =
            review.sentences[static_cast<size_t>(sentence_index)].text;
      } else {
        entry.display = StrFormat(
            "review #%d: %s%s", review_index,
            review.sentences.empty() ? ""
                                     : review.sentences[0].text.c_str(),
            review.sentences.size() > 1 ? " ..." : "");
      }
    }
    summary.entries.push_back(std::move(entry));
  }
  summary.budget_spent_ms = total_watch.ElapsedMillis();
  if (options_.collect_stats) {
    summary.stats = obs::SolverStats::FromTrace(trace);
  }
  SummariesCounter()->Increment();
  SolveMsHistogram()->Observe(summary.budget_spent_ms);
  return summary;
}

}  // namespace osrs
