#include "api/review_summarizer.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "common/strings.h"
#include "core/distance.h"
#include "coverage/item_graph.h"
#include "eval/elbow.h"
#include "solver/greedy.h"
#include "solver/ilp_summarizer.h"
#include "solver/local_search.h"
#include "solver/randomized_rounding.h"
#include "solver/summarizer.h"

namespace osrs {

const char* SummaryAlgorithmToString(SummaryAlgorithm algorithm) {
  switch (algorithm) {
    case SummaryAlgorithm::kGreedy:
      return "Greedy";
    case SummaryAlgorithm::kGreedyLazy:
      return "Greedy(lazy)";
    case SummaryAlgorithm::kIlp:
      return "ILP";
    case SummaryAlgorithm::kRandomizedRounding:
      return "RR";
    case SummaryAlgorithm::kLocalSearch:
      return "Greedy+swap";
  }
  return "unknown";
}

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string ItemSummary::ToJson() const {
  std::string out = "{";
  out += StrFormat(
      "\"cost\":%.6g,\"epsilon\":%.6g,\"solver_seconds\":%.6g,"
      "\"num_pairs\":%zu,\"num_candidates\":%zu,\"num_edges\":%zu,"
      "\"entries\":[",
      cost, epsilon, solver_seconds, num_pairs, num_candidates, num_edges);
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out += ',';
    out += StrFormat(
        "{\"display\":\"%s\",\"review\":%d,\"sentence\":%d,"
        "\"concept\":%d,\"sentiment\":%.6g}",
        JsonEscape(entries[i].display).c_str(), entries[i].review_index,
        entries[i].sentence_index, entries[i].pair.concept_id,
        entries[i].pair.sentiment);
  }
  out += "]}";
  return out;
}

ReviewSummarizer::ReviewSummarizer(const Ontology* ontology,
                                   ReviewSummarizerOptions options)
    : ontology_(ontology), options_(options) {
  OSRS_CHECK(ontology != nullptr);
  OSRS_CHECK(ontology->finalized());
  OSRS_CHECK_GT(options.epsilon, 0.0);
}

Result<ItemSummary> ReviewSummarizer::Summarize(const Item& item,
                                                int k) const {
  if (k < 0) return Status::InvalidArgument(StrFormat("k=%d negative", k));

  double epsilon = options_.epsilon;
  if (options_.auto_epsilon) {
    auto pairs = PairsOf(CollectPairs(item));
    if (!pairs.empty()) {
      ElbowResult elbow = SelectEpsilonByElbow(
          *ontology_, pairs, std::max(1, k),
          {0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9, 1.2, 1.6, 2.0});
      epsilon = elbow.chosen_epsilon;
    }
  }

  PairDistance distance(ontology_, epsilon);
  ItemGraph item_graph =
      BuildItemGraph(distance, item, options_.granularity);

  std::unique_ptr<Summarizer> solver;
  switch (options_.algorithm) {
    case SummaryAlgorithm::kGreedy:
      solver = std::make_unique<GreedySummarizer>();
      break;
    case SummaryAlgorithm::kGreedyLazy: {
      GreedyOptions greedy_options;
      greedy_options.heap = GreedyOptions::Heap::kLazy;
      solver = std::make_unique<GreedySummarizer>(greedy_options);
      break;
    }
    case SummaryAlgorithm::kIlp:
      solver = std::make_unique<IlpSummarizer>();
      break;
    case SummaryAlgorithm::kRandomizedRounding: {
      RandomizedRoundingOptions rr_options;
      rr_options.seed = options_.seed;
      solver = std::make_unique<RandomizedRoundingSummarizer>(rr_options);
      break;
    }
    case SummaryAlgorithm::kLocalSearch:
      solver = std::make_unique<LocalSearchSummarizer>();
      break;
  }

  int effective_k = std::min<int>(k, item_graph.graph.num_candidates());
  auto result = solver->Summarize(item_graph.graph, effective_k);
  OSRS_RETURN_IF_ERROR(result.status());

  ItemSummary summary;
  summary.cost = result->cost;
  summary.solver_seconds = result->seconds;
  summary.epsilon = epsilon;
  summary.num_pairs = item_graph.occurrences.size();
  summary.num_candidates =
      static_cast<size_t>(item_graph.graph.num_candidates());
  summary.num_edges = item_graph.graph.num_edges();

  for (int candidate : result->selected) {
    SummaryEntry entry;
    if (options_.granularity == SummaryGranularity::kPairs) {
      const PairOccurrence& occ =
          item_graph.occurrences[static_cast<size_t>(candidate)];
      entry.pair = occ.pair;
      entry.review_index = occ.review_index;
      entry.sentence_index = occ.sentence_index;
      entry.display =
          StrFormat("%s = %+.2f", ontology_->name(occ.pair.concept_id).c_str(),
                    occ.pair.sentiment);
    } else {
      auto [review_index, sentence_index] =
          item_graph.group_origin[static_cast<size_t>(candidate)];
      entry.review_index = review_index;
      entry.sentence_index = sentence_index;
      const Review& review =
          item.reviews[static_cast<size_t>(review_index)];
      const auto& members =
          item_graph.groups[static_cast<size_t>(candidate)];
      if (!members.empty()) {
        entry.pair =
            item_graph.occurrences[static_cast<size_t>(members.front())].pair;
      }
      if (options_.granularity == SummaryGranularity::kSentences) {
        entry.display =
            review.sentences[static_cast<size_t>(sentence_index)].text;
      } else {
        entry.display = StrFormat(
            "review #%d: %s%s", review_index,
            review.sentences.empty() ? ""
                                     : review.sentences[0].text.c_str(),
            review.sentences.size() > 1 ? " ..." : "");
      }
    }
    summary.entries.push_back(std::move(entry));
  }
  return summary;
}

}  // namespace osrs
