#ifndef OSRS_API_BATCH_SUMMARIZER_H_
#define OSRS_API_BATCH_SUMMARIZER_H_

#include <string>
#include <vector>

#include "api/review_summarizer.h"
#include "common/execution_budget.h"
#include "obs/metrics.h"
#include "obs/solver_stats.h"

namespace osrs {

/// Options of the multi-item driver.
struct BatchSummarizerOptions {
  /// Per-item options, including ReviewSummarizerOptions::
  /// graph_build_threads. The two thread knobs multiply (each batch worker
  /// builds its graphs with that many threads), so when `num_threads`
  /// already saturates the machine leave graph_build_threads at 1. A
  /// negative graph_build_threads is confined to its entries: each comes
  /// back kInvalidArgument, like a negative k.
  ReviewSummarizerOptions summarizer;
  /// Worker threads; 0 = std::thread::hardware_concurrency(). Items are
  /// independent, so results are identical to a serial run regardless of
  /// thread count (verified by tests). Negative values are rejected: every
  /// entry comes back kInvalidArgument.
  int num_threads = 0;
  /// Wall-clock budget for the whole batch in milliseconds; <= 0 disables
  /// it. Once it trips, items not yet started are stamped
  /// kDeadlineExceeded without being solved, and items in flight stop at
  /// their next budget check (degrading per the per-item fallback chain).
  double batch_deadline_ms = 0.0;
  /// Optional cooperative cancellation covering the whole batch; the flag
  /// must outlive SummarizeAll. Unstarted items are stamped kCancelled.
  const CancellationFlag* cancellation = nullptr;
};

/// One item's outcome in a batch.
struct BatchEntry {
  Status status;        // OK when `summary` is valid
  ItemSummary summary;  // default-constructed on error
};

/// Batch-level roll-up of per-item diagnostics: outcome counts, latency
/// histograms, and every item's solver stats merged by name.
struct BatchStats {
  int64_t total = 0;     // entries aggregated
  int64_t ok = 0;        // entries with an OK status
  int64_t failed = 0;    // entries with a non-OK status
  int64_t degraded = 0;  // OK entries whose summary is flagged degraded

  /// End-to-end per-item milliseconds (ItemSummary::budget_spent_ms) and
  /// solver-only milliseconds, over the OK entries.
  obs::HistogramSnapshot total_ms;
  obs::HistogramSnapshot solver_ms;

  /// Per-item SolverStats accumulated with MergeFrom: phase times sum,
  /// phase calls sum, counters sum.
  obs::SolverStats stats;

  /// {"total":N,"ok":N,"failed":N,"degraded":N,
  ///  "total_ms":<hist>,"solver_ms":<hist>,"stats":<SolverStats>}
  std::string ToJson() const;
};

/// Aggregates a SummarizeAll result into batch-level statistics. Pure
/// function of the entries, so callers may aggregate sub-slices too.
BatchStats AggregateBatchStats(const std::vector<BatchEntry>& entries);

/// Summarizes every item of a corpus (e.g. all 1000 doctors) in parallel —
/// the workload of the paper's §5.2 evaluation, packaged as a library
/// call.
///
/// Failure semantics: SummarizeAll always returns exactly one entry per
/// item, in item order, never throws, and never blocks past the batch
/// deadline plus one solver check interval. Per-item failures (invalid
/// sentiments, k < 0, budget trips that exhausted the fallback chain) are
/// confined to their entry's Status; k == 0 is valid and yields empty
/// summaries.
class BatchSummarizer {
 public:
  /// `ontology` must outlive the batch summarizer.
  BatchSummarizer(const Ontology* ontology, BatchSummarizerOptions options);

  /// One entry per item, in item order.
  std::vector<BatchEntry> SummarizeAll(const std::vector<Item>& items,
                                       int k) const;

 private:
  const Ontology* ontology_;
  BatchSummarizerOptions options_;
};

}  // namespace osrs

#endif  // OSRS_API_BATCH_SUMMARIZER_H_
