#ifndef OSRS_API_BATCH_SUMMARIZER_H_
#define OSRS_API_BATCH_SUMMARIZER_H_

#include <vector>

#include "api/review_summarizer.h"

namespace osrs {

/// Options of the multi-item driver.
struct BatchSummarizerOptions {
  ReviewSummarizerOptions summarizer;
  /// Worker threads; 0 = std::thread::hardware_concurrency(). Items are
  /// independent, so results are identical to a serial run regardless of
  /// thread count (verified by tests).
  int num_threads = 0;
};

/// One item's outcome in a batch.
struct BatchEntry {
  Status status;        // OK when `summary` is valid
  ItemSummary summary;  // default-constructed on error
};

/// Summarizes every item of a corpus (e.g. all 1000 doctors) in parallel —
/// the workload of the paper's §5.2 evaluation, packaged as a library
/// call.
class BatchSummarizer {
 public:
  /// `ontology` must outlive the batch summarizer.
  BatchSummarizer(const Ontology* ontology, BatchSummarizerOptions options);

  /// One entry per item, in item order.
  std::vector<BatchEntry> SummarizeAll(const std::vector<Item>& items,
                                       int k) const;

 private:
  const Ontology* ontology_;
  BatchSummarizerOptions options_;
};

}  // namespace osrs

#endif  // OSRS_API_BATCH_SUMMARIZER_H_
