#ifndef OSRS_API_BATCH_SUMMARIZER_H_
#define OSRS_API_BATCH_SUMMARIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "api/review_summarizer.h"
#include "common/execution_budget.h"
#include "obs/metrics.h"
#include "obs/solver_stats.h"

namespace osrs {

/// How BatchSummarizer re-attempts an item whose solve failed with a
/// transient status (StatusCodeIsRetryable: kUnavailable,
/// kResourceExhausted, kInternal — which includes exceptions isolated by
/// the worker boundary). Permanent failures (kInvalidArgument, kCancelled,
/// kDeadlineExceeded, ...) are never retried: they would fail identically
/// or the budget itself is gone.
struct RetryPolicy {
  /// Re-attempts after the first failure; 0 (the default) disables
  /// retrying entirely, preserving the historical one-shot behavior.
  int max_retries = 0;
  /// Backoff before retry r (1-based): initial * multiplier^(r-1), capped
  /// at `max_backoff_ms`, then scaled by a deterministic jitter factor in
  /// [1 - jitter, 1] derived from (jitter_seed, item index, r) — fixed
  /// seed means bit-reproducible retry timing decisions. A retry whose
  /// backoff the remaining batch deadline cannot fund is not started at
  /// all: the entry keeps its transient status, flagged exhausted_retries.
  double initial_backoff_ms = 1.0;
  double max_backoff_ms = 100.0;
  double backoff_multiplier = 2.0;
  /// Fraction of the backoff the jitter may remove, in [0, 1].
  double jitter = 0.5;
  uint64_t jitter_seed = 0x9E3779B97F4A7C15ull;
};

/// Options of the multi-item driver.
struct BatchSummarizerOptions {
  /// Per-item options, including ReviewSummarizerOptions::
  /// graph_build_threads. The two thread knobs multiply (each batch worker
  /// builds its graphs with that many threads), so when `num_threads`
  /// already saturates the machine leave graph_build_threads at 1. A
  /// negative graph_build_threads is confined to its entries: each comes
  /// back kInvalidArgument, like a negative k.
  ReviewSummarizerOptions summarizer;
  /// Worker threads; 0 = std::thread::hardware_concurrency(). Items are
  /// independent, so results are identical to a serial run regardless of
  /// thread count (verified by tests). Negative values are rejected: every
  /// entry comes back kInvalidArgument.
  int num_threads = 0;
  /// Wall-clock budget for the whole batch in milliseconds; <= 0 disables
  /// it. Once it trips, items not yet started are stamped
  /// kDeadlineExceeded without being solved, and items in flight stop at
  /// their next budget check (degrading per the per-item fallback chain).
  double batch_deadline_ms = 0.0;
  /// Optional cooperative cancellation covering the whole batch; the flag
  /// must outlive SummarizeAll. Unstarted items are stamped kCancelled.
  const CancellationFlag* cancellation = nullptr;
  /// Transient-failure retry policy, applied per item inside the worker
  /// loop. The default (max_retries = 0) never retries.
  RetryPolicy retry_policy;
};

/// One item's outcome in a batch.
struct BatchEntry {
  Status status;        // OK when `summary` is valid
  ItemSummary summary;  // default-constructed on error
  /// Re-attempts this item consumed (also stamped on summary.retries for
  /// OK entries, so it survives into ItemSummary::ToJson).
  int retries = 0;
  /// True when the final status is still retryable but the policy could
  /// not fund another attempt: either the max_retries > 0 budget was used
  /// up, or the remaining batch deadline could not cover the next backoff
  /// (the attempt is skipped rather than started with near-zero budget).
  /// Either way the item might have succeeded with a larger budget, unlike
  /// a permanent failure.
  bool exhausted_retries = false;
  /// True when at least one attempt ended in an exception (bad_alloc or
  /// otherwise) that the worker boundary converted to kInternal instead of
  /// letting it terminate the process.
  bool isolated_exception = false;
};

/// Batch-level roll-up of per-item diagnostics: outcome counts, latency
/// histograms, and every item's solver stats merged by name.
struct BatchStats {
  int64_t total = 0;     // entries aggregated
  int64_t ok = 0;        // entries with an OK status
  int64_t failed = 0;    // entries with a non-OK status
  int64_t degraded = 0;  // OK entries whose summary is flagged degraded
  int64_t retries = 0;   // re-attempts summed over all entries
  /// Entries whose retry budget ran out on a still-retryable failure.
  int64_t exhausted_retries = 0;
  /// Entries where the worker exception boundary fired at least once.
  int64_t isolated_exceptions = 0;

  /// End-to-end per-item milliseconds (ItemSummary::budget_spent_ms) and
  /// solver-only milliseconds, over the OK entries.
  obs::HistogramSnapshot total_ms;
  obs::HistogramSnapshot solver_ms;

  /// Per-item SolverStats accumulated with MergeFrom: phase times sum,
  /// phase calls sum, counters sum.
  obs::SolverStats stats;

  /// {"total":N,"ok":N,"failed":N,"degraded":N,"retries":N,
  ///  "exhausted_retries":N,"isolated_exceptions":N,
  ///  "total_ms":<hist>,"solver_ms":<hist>,"stats":<SolverStats>}
  std::string ToJson() const;
};

/// Aggregates a SummarizeAll result into batch-level statistics. Pure
/// function of the entries, so callers may aggregate sub-slices too.
BatchStats AggregateBatchStats(const std::vector<BatchEntry>& entries);

/// Summarizes every item of a corpus (e.g. all 1000 doctors) in parallel —
/// the workload of the paper's §5.2 evaluation, packaged as a library
/// call.
///
/// Failure semantics: SummarizeAll always returns exactly one entry per
/// item, in item order, never throws, and never blocks past the batch
/// deadline plus one solver check interval. Per-item failures (invalid
/// sentiments, k < 0, budget trips that exhausted the fallback chain) are
/// confined to their entry's Status; k == 0 is valid and yields empty
/// summaries. A hard exception boundary wraps every solve: an exception
/// escaping one item (std::bad_alloc included) becomes that entry's
/// kInternal status — flagged isolated_exception — and every other item
/// proceeds untouched. Transient failures are re-attempted per
/// BatchSummarizerOptions::retry_policy with deterministic jittered
/// backoff; see README.md, "Failure semantics".
class BatchSummarizer {
 public:
  /// `ontology` must outlive the batch summarizer.
  BatchSummarizer(const Ontology* ontology, BatchSummarizerOptions options);

  /// One entry per item, in item order.
  std::vector<BatchEntry> SummarizeAll(const std::vector<Item>& items,
                                       int k) const;

 private:
  const Ontology* ontology_;
  BatchSummarizerOptions options_;
};

}  // namespace osrs

#endif  // OSRS_API_BATCH_SUMMARIZER_H_
