#include "api/annotator.h"

#include <utility>

#include "common/strings.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace osrs {

ReviewAnnotator::ReviewAnnotator(const Ontology* ontology,
                                 SentimentEstimator estimator)
    : extractor_(ontology), estimator_(std::move(estimator)) {}

Status ReviewAnnotator::AnnotateSentence(Sentence& sentence) const {
  sentence.pairs.clear();
  std::vector<std::string> tokens = Tokenize(sentence.text);
  // The Try variants exist for exactly this call site: they put the
  // annotation phases behind failpoints so a chaos schedule can fail a
  // live request during extraction or scoring.
  Result<std::vector<ConceptId>> concepts =
      extractor_.TryExtractConcepts(tokens);
  OSRS_RETURN_IF_ERROR(concepts.status());
  if (concepts->empty()) return Status::OK();
  Result<double> sentiment = estimator_.TryScoreSentence(tokens);
  OSRS_RETURN_IF_ERROR(sentiment.status());
  sentence.pairs.reserve(concepts->size());
  for (ConceptId concept_id : *concepts) {
    sentence.pairs.push_back({concept_id, *sentiment});
  }
  return Status::OK();
}

Status ReviewAnnotator::Annotate(Item& item) const {
  for (Review& review : item.reviews) {
    for (Sentence& sentence : review.sentences) {
      OSRS_RETURN_IF_ERROR(AnnotateSentence(sentence));
    }
  }
  return Status::OK();
}

Result<Item> ReviewAnnotator::AnnotateTexts(
    const std::string& item_id, const std::vector<std::string>& review_texts,
    const std::vector<double>& ratings) const {
  if (!ratings.empty() && ratings.size() != review_texts.size()) {
    return Status::InvalidArgument(
        StrFormat("got %zu ratings for %zu reviews", ratings.size(),
                  review_texts.size()));
  }
  Item item;
  item.id = item_id;
  item.reviews.reserve(review_texts.size());
  for (size_t r = 0; r < review_texts.size(); ++r) {
    Review review;
    review.rating = ratings.empty() ? 0.0 : ratings[r];
    for (std::string& text : SplitSentences(review_texts[r])) {
      Sentence sentence;
      sentence.text = std::move(text);
      OSRS_RETURN_IF_ERROR(AnnotateSentence(sentence));
      review.sentences.push_back(std::move(sentence));
    }
    item.reviews.push_back(std::move(review));
  }
  // A misbehaving estimator (NaN, out-of-scale score) must surface here,
  // at the ingestion boundary, not deep inside a later cost sum.
  OSRS_RETURN_IF_ERROR(ValidateItem(item));
  return item;
}

}  // namespace osrs
