#include "api/batch_summarizer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <new>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/slog.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "validate/model_validator.h"

namespace osrs {
namespace {

/// Latency bucket bounds (milliseconds) of the batch roll-up histograms,
/// matching the "osrs.api.solve_ms" registry histogram.
const std::vector<double>& LatencyBoundsMs() {
  static const std::vector<double>* bounds = new std::vector<double>{
      0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500,
      5000};
  return *bounds;
}

obs::Gauge* InflightGauge() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("osrs.batch.inflight");
  return gauge;
}

obs::Counter* RetriesCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("osrs.batch.retries");
  return counter;
}

obs::Counter* ExceptionsIsolatedCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "osrs.batch.exceptions_isolated");
  return counter;
}

/// The per-worker exception boundary: a solve that throws — bad_alloc from
/// an allocation spike, anything else from a bug or an injected failpoint —
/// becomes a kInternal Status confined to this item instead of a
/// std::terminate that takes the whole batch down. kInternal is retryable,
/// so a configured RetryPolicy re-attempts the item.
Result<ItemSummary> GuardedSummarize(const ReviewSummarizer& summarizer,
                                     const Item& item, int k,
                                     const ExecutionBudget& budget,
                                     bool* exception_isolated) {
  try {
    return summarizer.Summarize(item, k, budget);
  } catch (const std::bad_alloc&) {
    *exception_isolated = true;
    return Status::Internal("isolated std::bad_alloc from summarize worker");
  } catch (const std::exception& e) {
    *exception_isolated = true;
    return Status::Internal(StrFormat(
        "isolated exception from summarize worker: %s", e.what()));
  } catch (...) {
    *exception_isolated = true;
    return Status::Internal(
        "isolated non-standard exception from summarize worker");
  }
}

/// splitmix64 finalizer: full-avalanche mix of the jitter inputs.
uint64_t Mix64(uint64_t h) {
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

/// Backoff before retry `attempt` (1-based) of item `item_index`:
/// exponential, capped, with a deterministic jitter factor in
/// [1 - jitter, 1] so identical (policy, item, attempt) triples always
/// sleep the same duration.
double BackoffMs(const RetryPolicy& policy, size_t item_index, int attempt) {
  double base = policy.initial_backoff_ms *
                std::pow(policy.backoff_multiplier, attempt - 1);
  base = std::min(base, policy.max_backoff_ms);
  if (base <= 0.0) return 0.0;
  uint64_t h = Mix64(policy.jitter_seed ^
                     Mix64(static_cast<uint64_t>(item_index) * 0x9E3779B97F4A7C15ull ^
                           static_cast<uint64_t>(attempt)));
  double unit = static_cast<double>(h >> 11) * 0x1p-53;  // [0, 1)
  double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  return base * (1.0 - jitter * unit);
}

/// Runs one item to completion under the retry policy, filling `entry`.
/// Only transient statuses (StatusCodeIsRetryable) are re-attempted, each
/// after a jittered backoff capped by the remaining batch deadline; the
/// batch budget is re-checked before every re-attempt so a drained batch
/// stops retrying immediately.
void RunItemWithRetries(const ReviewSummarizer& summarizer, const Item& item,
                        int k, const ExecutionBudget& batch_budget,
                        const RetryPolicy& policy, size_t item_index,
                        BatchEntry& entry) {
  for (int attempt = 0;; ++attempt) {
    bool exception_isolated = false;
    Result<ItemSummary> result = GuardedSummarize(summarizer, item, k,
                                                  batch_budget,
                                                  &exception_isolated);
    if (exception_isolated) {
      entry.isolated_exception = true;
      ExceptionsIsolatedCounter()->Increment();
    }
    if (result.ok()) {
      entry.summary = std::move(result).value();
      entry.summary.retries = entry.retries;
      entry.status = Status::OK();
      return;
    }
    Status failure = result.status();
    if (!StatusCodeIsRetryable(failure.code())) {
      entry.status = std::move(failure);
      return;
    }
    if (attempt >= policy.max_retries) {
      entry.exhausted_retries = policy.max_retries > 0;
      OSRS_LOG(::osrs::slog::Level::kWarn, "retry", "retries exhausted",
               {"item_index", item_index}, {"attempts", attempt + 1},
               {"code", StatusCodeToString(failure.code())});
      entry.status = std::move(failure);
      return;
    }
    // A tripped batch budget outranks the retry budget: report the real
    // failure, but spend no more time on this item.
    if (!batch_budget.Check().ok()) {
      entry.status = std::move(failure);
      return;
    }
    double backoff_ms = BackoffMs(policy, item_index, attempt + 1);
    double remaining_ms = batch_budget.RemainingMs();
    // A backoff the remaining batch budget cannot fund means the next
    // attempt would start with (near-)zero budget and fail as
    // kDeadlineExceeded at entry — masking the real transient failure and
    // burning a worker on a doomed solve. Skip the attempt instead: the
    // entry keeps its retryable status, flagged exhausted_retries because
    // time (not the retry count) is what ran out.
    if (std::isfinite(remaining_ms) && remaining_ms <= backoff_ms) {
      entry.exhausted_retries = true;
      OSRS_LOG(::osrs::slog::Level::kWarn, "retry",
               "retry skipped, batch budget cannot fund backoff",
               {"item_index", item_index}, {"backoff_ms", backoff_ms},
               {"remaining_ms", remaining_ms},
               {"code", StatusCodeToString(failure.code())});
      entry.status = std::move(failure);
      return;
    }
    ++entry.retries;
    RetriesCounter()->Increment();
    OSRS_LOG(::osrs::slog::Level::kInfo, "retry", "retrying item",
             {"item_index", item_index}, {"attempt", attempt + 1},
             {"backoff_ms", backoff_ms},
             {"code", StatusCodeToString(failure.code())});
    if (backoff_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
    }
  }
}

}  // namespace

std::string BatchStats::ToJson() const {
  return StrFormat(
      "{\"total\":%lld,\"ok\":%lld,\"failed\":%lld,\"degraded\":%lld,"
      "\"retries\":%lld,\"exhausted_retries\":%lld,"
      "\"isolated_exceptions\":%lld,"
      "\"total_ms\":%s,\"solver_ms\":%s,\"stats\":%s}",
      static_cast<long long>(total), static_cast<long long>(ok),
      static_cast<long long>(failed), static_cast<long long>(degraded),
      static_cast<long long>(retries),
      static_cast<long long>(exhausted_retries),
      static_cast<long long>(isolated_exceptions),
      total_ms.ToJson().c_str(), solver_ms.ToJson().c_str(),
      stats.ToJson().c_str());
}

BatchStats AggregateBatchStats(const std::vector<BatchEntry>& entries) {
  BatchStats out;
  out.total_ms = obs::HistogramSnapshot(LatencyBoundsMs());
  out.solver_ms = obs::HistogramSnapshot(LatencyBoundsMs());
  for (const BatchEntry& entry : entries) {
    ++out.total;
    out.retries += entry.retries;
    if (entry.exhausted_retries) ++out.exhausted_retries;
    if (entry.isolated_exception) ++out.isolated_exceptions;
    if (!entry.status.ok()) {
      ++out.failed;
      continue;
    }
    ++out.ok;
    if (entry.summary.degraded) ++out.degraded;
    out.total_ms.Observe(entry.summary.budget_spent_ms);
    out.solver_ms.Observe(entry.summary.solver_seconds * 1000.0);
    out.stats.MergeFrom(entry.summary.stats);
  }
  return out;
}

BatchSummarizer::BatchSummarizer(const Ontology* ontology,
                                 BatchSummarizerOptions options)
    : ontology_(ontology), options_(options) {
  OSRS_CHECK(ontology != nullptr);
  OSRS_CHECK(ontology->finalized());
}

std::vector<BatchEntry> BatchSummarizer::SummarizeAll(
    const std::vector<Item>& items, int k) const {
  std::vector<BatchEntry> entries(items.size());
  if (items.empty()) return entries;

  if (options_.num_threads < 0) {
    Status status = Status::InvalidArgument(
        StrFormat("num_threads=%d negative", options_.num_threads));
    for (BatchEntry& entry : entries) entry.status = status;
    return entries;
  }

  // Strict mode checks the shared ontology once up front rather than per
  // item per worker; per-item strict checks still run inside
  // ReviewSummarizer::Summarize.
  if (options_.summarizer.strict_validation) {
    ModelValidator validator;
    ValidationReport report = validator.MakeReport();
    validator.CheckOntology(*ontology_, &report);
    if (!report.ok()) {
      Status status = Status::InvalidArgument(
          "strict validation failed for the shared ontology:\n" +
          report.ToString());
      for (BatchEntry& entry : entries) entry.status = status;
      return entries;
    }
  }

  // Whole-batch budget, shared by every worker. Per-item deadlines and
  // cancellation from the summarizer options compose with it inside
  // ReviewSummarizer::Summarize via TightenedBy.
  ExecutionBudget batch_budget;
  if (options_.batch_deadline_ms > 0.0) {
    batch_budget.SetDeadlineMs(options_.batch_deadline_ms);
  }
  batch_budget.AddCancellation(options_.cancellation);

  unsigned hardware = std::thread::hardware_concurrency();
  int num_threads = options_.num_threads > 0
                        ? options_.num_threads
                        : static_cast<int>(std::max(1u, hardware));
  num_threads = std::min<int>(num_threads, static_cast<int>(items.size()));

  // Work stealing via a shared atomic cursor; each worker owns its own
  // ReviewSummarizer (they are stateless but this keeps options private).
  // Once the batch budget trips, remaining claimed items are stamped with
  // the budget's verdict instead of being solved, so the batch drains
  // quickly and still returns one entry per item.
  //
  // Deliberately lock-free, so nothing here carries common/sync.h
  // capability annotations: the fetch_add on `cursor` hands each index to
  // exactly one worker, `entries[index]` slots are therefore disjoint per
  // worker, and the join below publishes every slot before SummarizeAll
  // returns. TSan (ci.sh) is the checker for this protocol; the capability
  // analysis guards the mutex-based modules it cannot see.
  std::atomic<size_t> cursor{0};
  auto worker = [&]() {
    ReviewSummarizer summarizer(ontology_, options_.summarizer);
    while (true) {
      size_t index = cursor.fetch_add(1);
      if (index >= items.size()) break;
      Status batch_status = batch_budget.Check();
      if (!batch_status.ok()) {
        entries[index].status = std::move(batch_status);
        continue;
      }
      InflightGauge()->Increment();
      RunItemWithRetries(summarizer, items[index], k, batch_budget,
                         options_.retry_policy, index, entries[index]);
      InflightGauge()->Decrement();
    }
  };

  if (num_threads == 1) {
    worker();
    return entries;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) threads.emplace_back(worker);
  for (std::thread& thread : threads) thread.join();
  return entries;
}

}  // namespace osrs
