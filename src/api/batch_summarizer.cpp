#include "api/batch_summarizer.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "validate/model_validator.h"

namespace osrs {
namespace {

/// Latency bucket bounds (milliseconds) of the batch roll-up histograms,
/// matching the "osrs.api.solve_ms" registry histogram.
const std::vector<double>& LatencyBoundsMs() {
  static const std::vector<double>* bounds = new std::vector<double>{
      0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500,
      5000};
  return *bounds;
}

obs::Gauge* InflightGauge() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("osrs.batch.inflight");
  return gauge;
}

}  // namespace

std::string BatchStats::ToJson() const {
  return StrFormat(
      "{\"total\":%lld,\"ok\":%lld,\"failed\":%lld,\"degraded\":%lld,"
      "\"total_ms\":%s,\"solver_ms\":%s,\"stats\":%s}",
      static_cast<long long>(total), static_cast<long long>(ok),
      static_cast<long long>(failed), static_cast<long long>(degraded),
      total_ms.ToJson().c_str(), solver_ms.ToJson().c_str(),
      stats.ToJson().c_str());
}

BatchStats AggregateBatchStats(const std::vector<BatchEntry>& entries) {
  BatchStats out;
  out.total_ms = obs::HistogramSnapshot(LatencyBoundsMs());
  out.solver_ms = obs::HistogramSnapshot(LatencyBoundsMs());
  for (const BatchEntry& entry : entries) {
    ++out.total;
    if (!entry.status.ok()) {
      ++out.failed;
      continue;
    }
    ++out.ok;
    if (entry.summary.degraded) ++out.degraded;
    out.total_ms.Observe(entry.summary.budget_spent_ms);
    out.solver_ms.Observe(entry.summary.solver_seconds * 1000.0);
    out.stats.MergeFrom(entry.summary.stats);
  }
  return out;
}

BatchSummarizer::BatchSummarizer(const Ontology* ontology,
                                 BatchSummarizerOptions options)
    : ontology_(ontology), options_(options) {
  OSRS_CHECK(ontology != nullptr);
  OSRS_CHECK(ontology->finalized());
}

std::vector<BatchEntry> BatchSummarizer::SummarizeAll(
    const std::vector<Item>& items, int k) const {
  std::vector<BatchEntry> entries(items.size());
  if (items.empty()) return entries;

  if (options_.num_threads < 0) {
    Status status = Status::InvalidArgument(
        StrFormat("num_threads=%d negative", options_.num_threads));
    for (BatchEntry& entry : entries) entry.status = status;
    return entries;
  }

  // Strict mode checks the shared ontology once up front rather than per
  // item per worker; per-item strict checks still run inside
  // ReviewSummarizer::Summarize.
  if (options_.summarizer.strict_validation) {
    ModelValidator validator;
    ValidationReport report = validator.MakeReport();
    validator.CheckOntology(*ontology_, &report);
    if (!report.ok()) {
      Status status = Status::InvalidArgument(
          "strict validation failed for the shared ontology:\n" +
          report.ToString());
      for (BatchEntry& entry : entries) entry.status = status;
      return entries;
    }
  }

  // Whole-batch budget, shared by every worker. Per-item deadlines and
  // cancellation from the summarizer options compose with it inside
  // ReviewSummarizer::Summarize via TightenedBy.
  ExecutionBudget batch_budget;
  if (options_.batch_deadline_ms > 0.0) {
    batch_budget.SetDeadlineMs(options_.batch_deadline_ms);
  }
  batch_budget.AddCancellation(options_.cancellation);

  unsigned hardware = std::thread::hardware_concurrency();
  int num_threads = options_.num_threads > 0
                        ? options_.num_threads
                        : static_cast<int>(std::max(1u, hardware));
  num_threads = std::min<int>(num_threads, static_cast<int>(items.size()));

  // Work stealing via a shared atomic cursor; each worker owns its own
  // ReviewSummarizer (they are stateless but this keeps options private).
  // Once the batch budget trips, remaining claimed items are stamped with
  // the budget's verdict instead of being solved, so the batch drains
  // quickly and still returns one entry per item.
  std::atomic<size_t> cursor{0};
  auto worker = [&]() {
    ReviewSummarizer summarizer(ontology_, options_.summarizer);
    while (true) {
      size_t index = cursor.fetch_add(1);
      if (index >= items.size()) break;
      Status batch_status = batch_budget.Check();
      if (!batch_status.ok()) {
        entries[index].status = std::move(batch_status);
        continue;
      }
      InflightGauge()->Increment();
      auto result = summarizer.Summarize(items[index], k, batch_budget);
      InflightGauge()->Decrement();
      if (result.ok()) {
        entries[index].summary = std::move(result).value();
      } else {
        entries[index].status = result.status();
      }
    }
  };

  if (num_threads == 1) {
    worker();
    return entries;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) threads.emplace_back(worker);
  for (std::thread& thread : threads) thread.join();
  return entries;
}

}  // namespace osrs
