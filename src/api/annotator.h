#ifndef OSRS_API_ANNOTATOR_H_
#define OSRS_API_ANNOTATOR_H_

#include <string>
#include <vector>

#include "core/model.h"
#include "extraction/dictionary_extractor.h"
#include "ontology/ontology.h"
#include "sentiment/estimator.h"

namespace osrs {

/// The §5.1 annotation pipeline: sentence text → tokenization → concept
/// extraction (dictionary matcher over the ontology lexicon) → sentence
/// sentiment (estimator) → concept-sentiment pairs. The sentence's
/// sentiment is assigned to every concept it mentions, exactly as the
/// paper does ("we compute the sentiment of the containing sentence and
/// assign this sentiment to the concept").
class ReviewAnnotator {
 public:
  /// `ontology` must outlive the annotator.
  ReviewAnnotator(const Ontology* ontology, SentimentEstimator estimator);

  /// Recomputes every sentence's pairs in place from its text. Fails only
  /// on injected faults (the osrs.extraction.pairs / osrs.sentiment.score
  /// failpoints) — on a non-OK return the item is partially annotated and
  /// should be re-annotated or dropped, never summarized as-is.
  Status Annotate(Item& item) const;

  /// Builds an annotated Item from raw review texts (sentence splitting
  /// included). `ratings` are per-review normalized star ratings in
  /// [-1, 1]; pass an empty vector when unknown (ratings default to 0).
  Result<Item> AnnotateTexts(const std::string& item_id,
                             const std::vector<std::string>& review_texts,
                             const std::vector<double>& ratings) const;

  const Ontology& ontology() const { return extractor_.ontology(); }

 private:
  Status AnnotateSentence(Sentence& sentence) const;

  DictionaryExtractor extractor_;
  SentimentEstimator estimator_;
};

}  // namespace osrs

#endif  // OSRS_API_ANNOTATOR_H_
