#ifndef OSRS_OBS_METRICS_H_
#define OSRS_OBS_METRICS_H_

// Process-wide runtime metrics: thread-safe Counter / Gauge / Histogram
// primitives owned by a global MetricsRegistry with string-interned names
// (one handle per name, stable for the process lifetime).
//
// Two switches keep the layer near-free in production:
//
//   * compile time — the cmake option OSRS_OBS (default ON) defines
//     OSRS_OBS_ENABLED; with -DOSRS_OBS=OFF every recording call compiles
//     to nothing and TraceSpan (see obs/trace.h) shrinks to an empty type;
//   * run time — MetricsRegistry::SetEnabled(true) must be called before
//     registered metrics record anything. Disabled recording is one
//     relaxed atomic load plus a predictable branch.
//
// Naming convention: "osrs.<module>.<name>", e.g. "osrs.simplex.pivots"
// (documented in README.md, "Observability").

#ifndef OSRS_OBS_ENABLED
#define OSRS_OBS_ENABLED 1
#endif

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.h"

namespace osrs::obs {

/// False when the tree was configured with -DOSRS_OBS=OFF.
inline constexpr bool kCompiledIn = OSRS_OBS_ENABLED != 0;

namespace internal {
/// The runtime gate shared by every registered metric. A function-local
/// static sidesteps initialization-order issues for metrics touched during
/// static init.
inline std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{false};
  return enabled;
}
}  // namespace internal

/// True when telemetry is compiled in AND runtime-enabled.
inline bool Enabled() {
  if constexpr (!kCompiledIn) return false;
  return internal::EnabledFlag().load(std::memory_order_relaxed);
}

/// Monotonically increasing event count. Increments from any number of
/// threads sum exactly (relaxed atomic adds; no increment is ever lost).
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(int64_t delta) {
    if (!Enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  const std::string name_;
  std::atomic<int64_t> value_{0};
};

/// A value that goes up and down (queue depths, in-flight work).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) {
    if (!Enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if (!Enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  void Decrement() { Add(-1); }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  const std::string name_;
  std::atomic<int64_t> value_{0};
};

/// Plain (non-thread-safe, copyable) histogram state. Bucket semantics —
/// shared with Histogram and relied upon by tests:
///
///   * `upper_bounds` is strictly ascending; bucket i covers the half-open
///     interval [upper_bounds[i-1], upper_bounds[i]) — inclusive lower
///     edge, exclusive upper edge. Bucket 0 covers (-inf, upper_bounds[0]).
///   * One extra overflow bucket covers [upper_bounds.back(), +inf), so
///     `counts.size() == upper_bounds.size() + 1`.
struct HistogramSnapshot {
  std::vector<double> upper_bounds;
  std::vector<int64_t> counts;
  int64_t total_count = 0;
  double sum = 0.0;

  HistogramSnapshot() = default;
  explicit HistogramSnapshot(std::vector<double> bounds);

  /// Single-threaded accumulation (batch aggregation, tests).
  void Observe(double value);

  /// {"count":N,"sum":S,"buckets":[{"le":bound,"count":n},...]} — the last
  /// bucket renders "le":"inf".
  std::string ToJson() const;

  /// Index of the bucket `value` falls in (see the class comment).
  size_t BucketOf(double value) const;

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside the
  /// bucket the quantile rank falls in — the Prometheus-style estimate the
  /// serving layer uses for its p50 shed threshold and bench_serve reports
  /// as p50/p99. The first bucket interpolates from a lower edge of 0 (the
  /// layer's histograms hold non-negative latencies); ranks landing in the
  /// overflow bucket return the last finite bound. Returns 0 when empty.
  double Quantile(double q) const;
};

/// Thread-safe fixed-bucket histogram (see HistogramSnapshot for the
/// bucket semantics). Observations are relaxed atomic adds per bucket.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly ascending.
  Histogram(std::string name, std::vector<double> upper_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  /// Consistent-enough copy for rendering (individual bucket loads are
  /// relaxed; totals may trail concurrent observers by a few events).
  HistogramSnapshot Snapshot() const;

  void Reset();
  const std::string& name() const { return name_; }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }

 private:
  const std::string name_;
  const std::vector<double> upper_bounds_;
  std::vector<std::atomic<int64_t>> counts_;  // upper_bounds_.size() + 1
  std::atomic<int64_t> total_count_{0};
  std::atomic<double> sum_{0.0};
};

/// Plain-data copy of every registered metric at one instant — the input
/// to the OpenMetrics renderer (obs/openmetrics.h) and to delta-based
/// periodic reporters (osrs_serve): two snapshots subtract without
/// touching live atomics. Samples are sorted by name (the registry's
/// iteration order).
struct RegistrySnapshot {
  struct CounterSample {
    std::string name;
    int64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    int64_t value = 0;
  };
  struct HistogramSample {
    std::string name;
    HistogramSnapshot histogram;
  };

  bool enabled = false;
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Global name-interned registry. Get* calls return a stable handle per
/// name: the first call creates the metric, later calls (any thread)
/// return the same pointer, so call sites may cache handles in
/// function-local statics. Handles live for the process lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name) OSRS_EXCLUDES(mutex_);
  Gauge* GetGauge(std::string_view name) OSRS_EXCLUDES(mutex_);
  /// `upper_bounds` is consulted only on first registration; later calls
  /// with the same name return the existing histogram unchanged.
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> upper_bounds)
      OSRS_EXCLUDES(mutex_);

  /// Runtime gate for every registered metric (process-wide).
  void SetEnabled(bool enabled) {
    internal::EnabledFlag().store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return Enabled(); }

  /// Zeroes every registered metric (test/tool hook; handles stay valid).
  void ResetAll() OSRS_EXCLUDES(mutex_);

  /// Copies every registered metric into plain data (see RegistrySnapshot).
  RegistrySnapshot Snapshot() const OSRS_EXCLUDES(mutex_);

  /// "name value" lines, sorted by name; histograms render count/sum plus
  /// one "  le X: N" line per bucket.
  std::string ToText() const OSRS_EXCLUDES(mutex_);

  /// {"enabled":bool,"counters":{name:value,...},"gauges":{...},
  ///  "histograms":{name:<HistogramSnapshot::ToJson()>,...}}
  std::string ToJson() const OSRS_EXCLUDES(mutex_);

 private:
  MetricsRegistry() = default;

  /// Guards only the interning maps below; the metrics themselves are
  /// lock-free (relaxed atomics) and recorded through stable handles, so
  /// the mutex is touched on registration and rendering, never per event.
  mutable Mutex mutex_;
  // std::map keeps iteration sorted for rendering; unique_ptr keeps
  // handles stable across rehash-free inserts.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      OSRS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      OSRS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      OSRS_GUARDED_BY(mutex_);
};

}  // namespace osrs::obs

#endif  // OSRS_OBS_METRICS_H_
