#include "obs/metrics.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace osrs::obs {

HistogramSnapshot::HistogramSnapshot(std::vector<double> bounds)
    : upper_bounds(std::move(bounds)),
      counts(upper_bounds.size() + 1, 0) {}

size_t HistogramSnapshot::BucketOf(double value) const {
  // First bucket whose (exclusive) upper edge is above the value; values
  // at or past the last edge land in the trailing overflow bucket.
  return static_cast<size_t>(
      std::upper_bound(upper_bounds.begin(), upper_bounds.end(), value) -
      upper_bounds.begin());
}

void HistogramSnapshot::Observe(double value) {
  counts[BucketOf(value)] += 1;
  total_count += 1;
  sum += value;
}

double HistogramSnapshot::Quantile(double q) const {
  if (total_count <= 0 || upper_bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double rank = q * static_cast<double>(total_count);
  int64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (static_cast<double>(seen + counts[i]) < rank) {
      seen += counts[i];
      continue;
    }
    if (i >= upper_bounds.size()) return upper_bounds.back();
    double lower = i == 0 ? 0.0 : upper_bounds[i - 1];
    double upper = upper_bounds[i];
    if (counts[i] <= 0) return lower;
    double within = (rank - static_cast<double>(seen)) /
                    static_cast<double>(counts[i]);
    return lower + (upper - lower) * std::clamp(within, 0.0, 1.0);
  }
  return upper_bounds.back();
}

std::string HistogramSnapshot::ToJson() const {
  std::string out = StrFormat("{\"count\":%lld,\"sum\":%.6g,\"buckets\":[",
                              static_cast<long long>(total_count), sum);
  for (size_t i = 0; i < counts.size(); ++i) {
    if (i > 0) out += ',';
    if (i < upper_bounds.size()) {
      out += StrFormat("{\"le\":%.6g,\"count\":%lld}", upper_bounds[i],
                       static_cast<long long>(counts[i]));
    } else {
      out += StrFormat("{\"le\":\"inf\",\"count\":%lld}",
                       static_cast<long long>(counts[i]));
    }
  }
  out += "]}";
  return out;
}

Histogram::Histogram(std::string name, std::vector<double> upper_bounds)
    : name_(std::move(name)),
      upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1) {
  OSRS_CHECK(!upper_bounds_.empty());
  for (size_t i = 1; i < upper_bounds_.size(); ++i) {
    OSRS_CHECK_MSG(upper_bounds_[i - 1] < upper_bounds_[i],
                   "histogram '" << name_
                                 << "': bounds not strictly ascending");
  }
}

void Histogram::Observe(double value) {
  if (!Enabled()) return;
  size_t bucket = static_cast<size_t>(
      std::upper_bound(upper_bounds_.begin(), upper_bounds_.end(), value) -
      upper_bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  total_count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap(upper_bounds_);
  for (size_t i = 0; i < counts_.size(); ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snap.total_count = total_count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (auto& count : counts_) count.store(0, std::memory_order_relaxed);
  total_count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::make_unique<Gauge>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> upper_bounds) {
  MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name),
                                                  std::move(upper_bounds)))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot snapshot;
  snapshot.enabled = Enabled();
  MutexLock lock(mutex_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.push_back({name, histogram->Snapshot()});
  }
  return snapshot;
}

std::string MetricsRegistry::ToText() const {
  MutexLock lock(mutex_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += StrFormat("%s %lld\n", name.c_str(),
                     static_cast<long long>(counter->value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    out += StrFormat("%s %lld\n", name.c_str(),
                     static_cast<long long>(gauge->value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot snap = histogram->Snapshot();
    out += StrFormat("%s count=%lld sum=%.6g\n", name.c_str(),
                     static_cast<long long>(snap.total_count), snap.sum);
    for (size_t i = 0; i < snap.counts.size(); ++i) {
      if (snap.counts[i] == 0) continue;
      if (i < snap.upper_bounds.size()) {
        out += StrFormat("  le %.6g: %lld\n", snap.upper_bounds[i],
                         static_cast<long long>(snap.counts[i]));
      } else {
        out += StrFormat("  le inf: %lld\n",
                         static_cast<long long>(snap.counts[i]));
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(mutex_);
  std::string out =
      StrFormat("{\"enabled\":%s,\"counters\":{", Enabled() ? "true" : "false");
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ',';
    first = false;
    out += StrFormat("\"%s\":%lld", JsonEscape(name).c_str(),
                     static_cast<long long>(counter->value()));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += StrFormat("\"%s\":%lld", JsonEscape(name).c_str(),
                     static_cast<long long>(gauge->value()));
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += StrFormat("\"%s\":%s", JsonEscape(name).c_str(),
                     histogram->Snapshot().ToJson().c_str());
  }
  out += "}}";
  return out;
}

}  // namespace osrs::obs
