#include "obs/trace.h"

#include <cstring>

namespace osrs::obs {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kBuildCoverageGraph:
      return "build_coverage_graph";
    case Phase::kHeapInit:
      return "heap_init";
    case Phase::kGreedyIterations:
      return "greedy_iterations";
    case Phase::kLpRelaxation:
      return "lp_relaxation";
    case Phase::kRoundingTrials:
      return "rounding_trials";
    case Phase::kBranchAndBound:
      return "branch_and_bound";
    case Phase::kLocalSearchPasses:
      return "local_search_passes";
    case Phase::kExhaustiveEnumeration:
      return "exhaustive_enumeration";
    case Phase::kReductionBuild:
      return "reduction_build";
    case Phase::kSolveAttempt:
      return "solve_attempt";
  }
  return "unknown";
}

const char* StatName(Stat stat) {
  switch (stat) {
    case Stat::kCandidatesConsidered:
      return "candidates_considered";
    case Stat::kHeapPops:
      return "heap_pops";
    case Stat::kKeyUpdates:
      return "key_updates";
    case Stat::kGainRecomputes:
      return "gain_recomputes";
    case Stat::kDistanceEvaluations:
      return "distance_evaluations";
    case Stat::kSimplexPivots:
      return "simplex_pivots";
    case Stat::kBnbNodes:
      return "bnb_nodes";
    case Stat::kRoundingTrials:
      return "rounding_trials";
    case Stat::kSwapsApplied:
      return "swaps_applied";
    case Stat::kSubsetsEvaluated:
      return "subsets_evaluated";
    case Stat::kGraphEdgesBuilt:
      return "graph_edges_built";
  }
  return "unknown";
}

bool SolveTrace::empty() const {
  for (int p = 0; p < kNumPhases; ++p) {
    if (phase_calls_[p] != 0) return false;
  }
  for (int s = 0; s < kNumStats; ++s) {
    if (stats_[s] != 0) return false;
  }
  return true;
}

void SolveTrace::Reset() { *this = SolveTrace(); }

void SolveTrace::MergeFrom(const SolveTrace& other) {
  for (int p = 0; p < kNumPhases; ++p) {
    phase_nanos_[p] += other.phase_nanos_[p];
    phase_calls_[p] += other.phase_calls_[p];
  }
  for (int s = 0; s < kNumStats; ++s) {
    stats_[s] += other.stats_[s];
  }
}

}  // namespace osrs::obs
