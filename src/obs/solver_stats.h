#ifndef OSRS_OBS_SOLVER_STATS_H_
#define OSRS_OBS_SOLVER_STATS_H_

// Rendering-friendly view of a SolveTrace: named per-phase timings and
// counters, carried on ItemSummary and aggregated by BatchSummarizer.
// Unlike SolveTrace (fixed arrays, hot path), SolverStats is plain data
// with stable string names, safe to copy, merge, and serialize.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace osrs::obs {

/// One instrumented phase: total time and how often it ran.
struct PhaseStat {
  std::string name;  // PhaseName(), e.g. "greedy_iterations"
  double millis = 0.0;
  int64_t calls = 0;
};

/// One solver progress counter.
struct CounterStat {
  std::string name;  // StatName(), e.g. "distance_evaluations"
  int64_t value = 0;
};

/// Per-solve statistics in wire form. Only phases that ran and counters
/// that are nonzero appear, so an uninstrumented (or OSRS_OBS=OFF) solve
/// renders as the empty object.
struct SolverStats {
  std::vector<PhaseStat> phases;
  std::vector<CounterStat> counters;

  bool empty() const { return phases.empty() && counters.empty(); }

  /// Value of the named counter, or 0 when absent.
  int64_t counter(std::string_view name) const;
  /// Total milliseconds recorded under the named phase, or 0 when absent.
  double phase_millis(std::string_view name) const;

  /// Extracts the non-empty phases/counters of a trace.
  static SolverStats FromTrace(const SolveTrace& trace);

  /// Accumulates `other` into this, matching phases/counters by name
  /// (unknown names are appended) — the batch aggregation primitive.
  void MergeFrom(const SolverStats& other);

  /// {"phases":{"name":{"ms":T,"calls":N},...},"counters":{"name":V,...}}
  std::string ToJson() const;

  /// Human-readable multi-line rendering ("  <name>  <ms> ms  (N calls)"),
  /// each line prefixed with `indent`.
  std::string ToText(const std::string& indent = "") const;
};

}  // namespace osrs::obs

#endif  // OSRS_OBS_SOLVER_STATS_H_
