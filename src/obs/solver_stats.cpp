#include "obs/solver_stats.h"

#include "common/strings.h"

namespace osrs::obs {

int64_t SolverStats::counter(std::string_view name) const {
  for (const CounterStat& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

double SolverStats::phase_millis(std::string_view name) const {
  for (const PhaseStat& p : phases) {
    if (p.name == name) return p.millis;
  }
  return 0.0;
}

SolverStats SolverStats::FromTrace(const SolveTrace& trace) {
  SolverStats stats;
  for (int p = 0; p < kNumPhases; ++p) {
    Phase phase = static_cast<Phase>(p);
    if (trace.phase_calls(phase) == 0) continue;
    stats.phases.push_back({PhaseName(phase),
                            static_cast<double>(trace.phase_nanos(phase)) * 1e-6,
                            trace.phase_calls(phase)});
  }
  for (int s = 0; s < kNumStats; ++s) {
    Stat stat = static_cast<Stat>(s);
    if (trace.stat(stat) == 0) continue;
    stats.counters.push_back({StatName(stat), trace.stat(stat)});
  }
  return stats;
}

void SolverStats::MergeFrom(const SolverStats& other) {
  for (const PhaseStat& theirs : other.phases) {
    bool merged = false;
    for (PhaseStat& ours : phases) {
      if (ours.name == theirs.name) {
        ours.millis += theirs.millis;
        ours.calls += theirs.calls;
        merged = true;
        break;
      }
    }
    if (!merged) phases.push_back(theirs);
  }
  for (const CounterStat& theirs : other.counters) {
    bool merged = false;
    for (CounterStat& ours : counters) {
      if (ours.name == theirs.name) {
        ours.value += theirs.value;
        merged = true;
        break;
      }
    }
    if (!merged) counters.push_back(theirs);
  }
}

std::string SolverStats::ToJson() const {
  std::string out = "{\"phases\":{";
  for (size_t i = 0; i < phases.size(); ++i) {
    if (i > 0) out += ',';
    out += StrFormat("\"%s\":{\"ms\":%.6g,\"calls\":%lld}",
                     JsonEscape(phases[i].name).c_str(), phases[i].millis,
                     static_cast<long long>(phases[i].calls));
  }
  out += "},\"counters\":{";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out += ',';
    out += StrFormat("\"%s\":%lld", JsonEscape(counters[i].name).c_str(),
                     static_cast<long long>(counters[i].value));
  }
  out += "}}";
  return out;
}

std::string SolverStats::ToText(const std::string& indent) const {
  std::string out;
  for (const PhaseStat& phase : phases) {
    out += StrFormat("%s%-24s %10.3f ms  (%lld call%s)\n", indent.c_str(),
                     phase.name.c_str(), phase.millis,
                     static_cast<long long>(phase.calls),
                     phase.calls == 1 ? "" : "s");
  }
  for (const CounterStat& counter : counters) {
    out += StrFormat("%s%-24s %10lld\n", indent.c_str(),
                     counter.name.c_str(),
                     static_cast<long long>(counter.value));
  }
  return out;
}

}  // namespace osrs::obs
