#ifndef OSRS_OBS_OPENMETRICS_H_
#define OSRS_OBS_OPENMETRICS_H_

// OpenMetrics / Prometheus text-format rendering over a RegistrySnapshot
// (see obs/metrics.h). The export half of the metrics pipeline: the
// registry's dotted names ("osrs.serve.solve_ms") become sanitized metric
// families ("osrs_serve_solve_ms") with the standard family comments and
// sample suffixes:
//
//   # HELP osrs_serve_solves counter osrs.serve.solves
//   # TYPE osrs_serve_solves counter
//   osrs_serve_solves_total 42
//
// Histograms render the Prometheus cumulative-bucket form — one
// `_bucket{le="..."}` sample per upper bound in ascending order, a
// `+Inf` bucket equal to `_count`, then `_sum` and `_count` — so any
// Prometheus-compatible scraper can ingest the file as-is. The registry's
// internal buckets are half-open [lo, hi); rendering them under `le`
// (<=) shifts boundary samples by at most one bucket, which the format
// tolerates (bucket edges are estimates by design). Output ends with the
// OpenMetrics `# EOF` terminator; tools/check_openmetrics.sh lints all of
// the above in CI against live osrs_serve output.

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace osrs::obs {

/// Maps a registry name onto the OpenMetrics charset [a-zA-Z0-9_:]:
/// dots (and any other invalid byte) become '_'; a leading digit gets a
/// '_' prefix. Empty input renders as "_".
std::string SanitizeMetricName(std::string_view name);

/// Renders one snapshot as an OpenMetrics text exposition (see the file
/// comment for the exact shape). Deterministic: families appear in the
/// snapshot's (sorted) order, counters then gauges then histograms.
std::string RenderOpenMetrics(const RegistrySnapshot& snapshot);

/// Convenience: snapshot the global registry and render it.
std::string RenderGlobalOpenMetrics();

}  // namespace osrs::obs

#endif  // OSRS_OBS_OPENMETRICS_H_
