#include "obs/request_trace.h"

#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace osrs::obs {

uint64_t DeriveTraceId(uint64_t request_id) {
  uint64_t z = request_id + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

const char* RequestSpanKindName(RequestSpanKind kind) {
  switch (kind) {
    case RequestSpanKind::kServe:
      return "serve";
    case RequestSpanKind::kCacheProbe:
      return "cache_probe";
    case RequestSpanKind::kAdmission:
      return "admission";
    case RequestSpanKind::kQueueWait:
      return "queue_wait";
    case RequestSpanKind::kShedDecision:
      return "shed_decision";
    case RequestSpanKind::kSolve:
      return "solve";
    case RequestSpanKind::kStaleFallback:
      return "stale_fallback";
    case RequestSpanKind::kCoalescedWait:
      return "coalesced_wait";
  }
  return "unknown";
}

size_t RequestTrace::BeginSpan(RequestSpanKind kind) {
  RequestSpan span;
  span.kind = kind;
  span.depth = open_depth_;
  span.start_ns = watch_.ElapsedNanos();
  ++open_depth_;
  spans_.push_back(span);
  return spans_.size() - 1;
}

void RequestTrace::EndSpan(size_t index) {
  OSRS_CHECK(index < spans_.size());
  OSRS_CHECK(spans_[index].duration_ns < 0);
  spans_[index].duration_ns = watch_.ElapsedNanos() - spans_[index].start_ns;
  --open_depth_;
}

void RequestTrace::AddSpan(RequestSpanKind kind, int64_t start_ns,
                           int64_t duration_ns) {
  RequestSpan span;
  span.kind = kind;
  span.depth =
      open_depth_ > 0 ? open_depth_ : (spans_.empty() ? 0 : 1);
  span.start_ns = start_ns;
  span.duration_ns = duration_ns < 0 ? 0 : duration_ns;
  spans_.push_back(span);
}

void RequestTrace::AttachSolverStats(SolverStats stats) {
  if (stats.empty()) return;
  solver_stats_ = std::move(stats);
  has_solver_stats_ = true;
}

bool RequestTrace::balanced() const {
  if (open_depth_ != 0) return false;
  for (const RequestSpan& span : spans_) {
    if (span.duration_ns < 0) return false;
  }
  return true;
}

bool RequestTrace::HasSpan(RequestSpanKind kind) const {
  for (const RequestSpan& span : spans_) {
    if (span.kind == kind) return true;
  }
  return false;
}

int64_t RequestTrace::SpanDurationNs(RequestSpanKind kind) const {
  int64_t total = 0;
  for (const RequestSpan& span : spans_) {
    if (span.kind == kind && span.duration_ns >= 0) {
      total += span.duration_ns;
    }
  }
  return total;
}

std::string RequestTrace::ToJson() const {
  std::string out = StrFormat(
      "{\"trace_id\":\"%016llx\",\"request_id\":%llu,\"spans\":[",
      static_cast<unsigned long long>(context.trace_id),
      static_cast<unsigned long long>(context.request_id));
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (i > 0) out += ',';
    out += StrFormat(
        "{\"kind\":\"%s\",\"depth\":%d,\"start_ns\":%lld,"
        "\"duration_ns\":%lld}",
        RequestSpanKindName(spans_[i].kind), spans_[i].depth,
        static_cast<long long>(spans_[i].start_ns),
        static_cast<long long>(spans_[i].duration_ns));
  }
  out += ']';
  if (has_solver_stats_) {
    out += ",\"solver\":";
    out += solver_stats_.ToJson();
  }
  out += '}';
  return out;
}

void TraceRing::Push(RequestTrace trace) {
  if (capacity_ == 0) return;
  MutexLock lock(mutex_);
  while (traces_.size() >= capacity_) traces_.pop_front();
  traces_.push_back(std::move(trace));
}

std::vector<RequestTrace> TraceRing::Snapshot() const {
  MutexLock lock(mutex_);
  return std::vector<RequestTrace>(traces_.begin(), traces_.end());
}

size_t TraceRing::size() const {
  MutexLock lock(mutex_);
  return traces_.size();
}

}  // namespace osrs::obs
