#ifndef OSRS_OBS_REQUEST_TRACE_H_
#define OSRS_OBS_REQUEST_TRACE_H_

// Request-scoped tracing for the serving layer: where obs/trace.h times
// the phases *inside* one solve, RequestTrace follows one request across
// threads — admission, cache probe, queue wait, shed decision, solve,
// stale fallback — as a flattened span tree with a deterministic 64-bit
// trace id, so a p99 outlier or a shed decision is attributable to a
// phase after the fact (DESIGN.md, "Observability v2").
//
// A trace is owned by exactly one thread at a time: the submitting thread
// records admission-side spans, hands the trace to the worker with the
// queued flight (the queue mutex is the synchronization point), and the
// worker records queue-wait/shed/solve spans before handing the finished
// trace back on the response. Coalesced followers copy the leader's
// completed trace — sharing its solve span — then stamp their own
// request id and append their wait span to the copy.
//
// Always compiled (like SolveTrace): recording a span is a clock read and
// a vector push, cheap enough for the serving path at any OSRS_OBS
// setting. The bounded TraceRing keeps the most recent completed traces
// in memory for the `traces` REPL verb and post-hoc debugging.

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/sync.h"
#include "obs/solver_stats.h"

namespace osrs::obs {

/// Identity of one request: a monotonic per-server request id plus the
/// trace id deterministically derived from it (DeriveTraceId), so tests
/// and log readers can reconstruct the pairing without coordination.
struct RequestContext {
  uint64_t request_id = 0;
  uint64_t trace_id = 0;
};

/// SplitMix64 finalizer over the request id: deterministic, bijective,
/// and well-spread, so trace ids look random in logs but are exactly
/// reproducible from the request sequence.
uint64_t DeriveTraceId(uint64_t request_id);

/// The serving-path phases a request can pass through. kServe is the root
/// span every trace opens with; the rest nest one level below it.
enum class RequestSpanKind {
  kServe,          // root: Serve() entry to response
  kCacheProbe,     // exact-epoch cache lookup
  kAdmission,      // coalesce-or-admit decision under the queue lock
  kQueueWait,      // enqueue to dequeue (recorded post-hoc by the worker)
  kShedDecision,   // budget-vs-p50 shed evaluation at dequeue
  kSolve,          // the solver invocation
  kStaleFallback,  // stale-cache lookup after a shed/failed solve
  kCoalescedWait,  // a follower's wait on another request's flight
};

const char* RequestSpanKindName(RequestSpanKind kind);

/// One recorded phase. Spans are stored in start order with an explicit
/// depth instead of child pointers — enough to render the tree, cheap to
/// copy.
struct RequestSpan {
  RequestSpanKind kind = RequestSpanKind::kServe;
  /// Nesting level: 0 for the root kServe span, 1 for its children.
  int depth = 0;
  /// Offset from trace creation, nanoseconds.
  int64_t start_ns = 0;
  /// -1 while the span is open; >= 0 once closed.
  int64_t duration_ns = -1;
};

/// The span tree of one request. Plain data, copyable; not thread-safe —
/// ownership passes between threads through an external synchronization
/// point (the serving queue's mutex). ElapsedNanos() alone is safe to
/// call concurrently with recording: it reads only the creation-time
/// clock base, which is immutable after construction.
class RequestTrace {
 public:
  RequestContext context;

  /// Opens a span at the current nesting depth; returns its index for
  /// EndSpan. Spans must close in LIFO order (the tree is a stack shape).
  size_t BeginSpan(RequestSpanKind kind);

  /// Closes the span returned by BeginSpan.
  void EndSpan(size_t index);

  /// Appends an already-measured span (e.g. queue wait, whose start was
  /// only known to another thread). Placed under the currently open span;
  /// when the trace is already complete it becomes a child of the root.
  void AddSpan(RequestSpanKind kind, int64_t start_ns, int64_t duration_ns);

  /// Attaches the per-phase solver breakdown of the solve this request
  /// triggered (empty stats are ignored).
  void AttachSolverStats(SolverStats stats);

  /// Nanoseconds since this trace was created — the time base every
  /// span's start_ns is relative to.
  int64_t ElapsedNanos() const { return watch_.ElapsedNanos(); }

  const std::vector<RequestSpan>& spans() const { return spans_; }
  int open_spans() const { return open_depth_; }
  /// True when every opened span was closed: the invariant each completed
  /// ServeOutcome must satisfy (serve_test asserts it per outcome).
  bool balanced() const;

  bool HasSpan(RequestSpanKind kind) const;
  /// Total closed duration over spans of `kind` (0 when absent).
  int64_t SpanDurationNs(RequestSpanKind kind) const;

  const SolverStats& solver_stats() const { return solver_stats_; }
  bool has_solver_stats() const { return has_solver_stats_; }

  /// {"trace_id":"<16 hex>","request_id":N,
  ///  "spans":[{"kind":"queue_wait","depth":1,"start_ns":..,
  ///            "duration_ns":..},...],
  ///  "solver":<SolverStats::ToJson()>}        (solver omitted when absent)
  std::string ToJson() const;

 private:
  Stopwatch watch_;
  std::vector<RequestSpan> spans_;
  int open_depth_ = 0;
  SolverStats solver_stats_;
  bool has_solver_stats_ = false;
};

/// RAII span for same-thread phases. Null trace = no-op.
class RequestSpanScope {
 public:
  RequestSpanScope(RequestTrace* trace, RequestSpanKind kind)
      : trace_(trace), index_(trace != nullptr ? trace->BeginSpan(kind) : 0) {}
  ~RequestSpanScope() {
    if (trace_ != nullptr) trace_->EndSpan(index_);
  }
  RequestSpanScope(const RequestSpanScope&) = delete;
  RequestSpanScope& operator=(const RequestSpanScope&) = delete;

 private:
  RequestTrace* trace_;
  size_t index_;
};

/// Bounded ring of recently completed traces, oldest evicted first.
/// Thread-safe; capacity 0 disables retention entirely.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity) : capacity_(capacity) {}
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void Push(RequestTrace trace) OSRS_EXCLUDES(mutex_);

  /// Copies the retained traces, oldest first.
  std::vector<RequestTrace> Snapshot() const OSRS_EXCLUDES(mutex_);

  size_t size() const OSRS_EXCLUDES(mutex_);
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mutex_;
  std::deque<RequestTrace> traces_ OSRS_GUARDED_BY(mutex_);
};

}  // namespace osrs::obs

#endif  // OSRS_OBS_REQUEST_TRACE_H_
