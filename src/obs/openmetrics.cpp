#include "obs/openmetrics.h"

#include "common/strings.h"

namespace osrs::obs {

std::string SanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += valid ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

namespace {

void AppendFamilyHeader(std::string* out, const std::string& family,
                        const char* type, const std::string& source_name) {
  *out += StrFormat("# HELP %s %s %s\n", family.c_str(), type,
                    source_name.c_str());
  *out += StrFormat("# TYPE %s %s\n", family.c_str(), type);
}

}  // namespace

std::string RenderOpenMetrics(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const RegistrySnapshot::CounterSample& counter : snapshot.counters) {
    std::string family = SanitizeMetricName(counter.name);
    AppendFamilyHeader(&out, family, "counter", counter.name);
    out += StrFormat("%s_total %lld\n", family.c_str(),
                     static_cast<long long>(counter.value));
  }
  for (const RegistrySnapshot::GaugeSample& gauge : snapshot.gauges) {
    std::string family = SanitizeMetricName(gauge.name);
    AppendFamilyHeader(&out, family, "gauge", gauge.name);
    out += StrFormat("%s %lld\n", family.c_str(),
                     static_cast<long long>(gauge.value));
  }
  for (const RegistrySnapshot::HistogramSample& histogram :
       snapshot.histograms) {
    std::string family = SanitizeMetricName(histogram.name);
    AppendFamilyHeader(&out, family, "histogram", histogram.name);
    const HistogramSnapshot& snap = histogram.histogram;
    int64_t cumulative = 0;
    for (size_t i = 0; i < snap.upper_bounds.size(); ++i) {
      cumulative += i < snap.counts.size() ? snap.counts[i] : 0;
      out += StrFormat("%s_bucket{le=\"%.6g\"} %lld\n", family.c_str(),
                       snap.upper_bounds[i],
                       static_cast<long long>(cumulative));
    }
    // The +Inf bucket is the full count by definition — including the
    // overflow bucket the registry keeps past the last finite bound.
    out += StrFormat("%s_bucket{le=\"+Inf\"} %lld\n", family.c_str(),
                     static_cast<long long>(snap.total_count));
    out += StrFormat("%s_sum %.6g\n", family.c_str(), snap.sum);
    out += StrFormat("%s_count %lld\n", family.c_str(),
                     static_cast<long long>(snap.total_count));
  }
  out += "# EOF\n";
  return out;
}

std::string RenderGlobalOpenMetrics() {
  return RenderOpenMetrics(MetricsRegistry::Global().Snapshot());
}

}  // namespace osrs::obs
