#ifndef OSRS_OBS_TRACE_H_
#define OSRS_OBS_TRACE_H_

// Per-solve phase tracing. A SolveTrace is a small fixed-size accumulator
// of per-phase timings (enum-indexed, so the hot path never touches a
// string or allocates) plus the solver progress counters the paper's
// runtime analysis talks about (heap pops, pivots, rounding trials, ...).
//
// Collection is cooperative and thread-local: a caller installs a trace
// with Tracer::Scope, and every TraceSpan / TraceStat call below it on the
// same thread records into that trace. With no trace installed (the
// default) a span is one thread-local load, one branch, and one clock
// read; with -DOSRS_OBS=OFF it is an empty object (sizeof == 1) and
// TraceStat is a no-op — obs_test static_asserts this.
//
// RAII spans keep nesting balanced on every exit path, including solver
// early returns on a tripped ExecutionBudget: open_spans() is 0 again the
// moment the stack unwinds.

#include <cstdint>

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace osrs::obs {

/// The span taxonomy (documented in README.md, "Observability"). One enum
/// value per instrumented phase; PhaseName gives the stable wire name.
enum class Phase : uint8_t {
  kBuildCoverageGraph = 0,  // §4.1 bipartite graph construction
  kHeapInit,                // greedy initial-gain scan + heap build
  kGreedyIterations,        // greedy selection rounds
  kLpRelaxation,            // simplex solve of the k-median LP
  kRoundingTrials,          // Algorithm 1 sampling (or LP-top-k rounding)
  kBranchAndBound,          // ILP branch-and-bound search
  kLocalSearchPasses,       // swap-polish passes (one span per pass)
  kExhaustiveEnumeration,   // oracle subset enumeration
  kReductionBuild,          // Theorem 1 Set-Cover reduction construction
  kSolveAttempt,            // one facade solver attempt (primary/fallback)
};
inline constexpr int kNumPhases = 10;

/// Stable lowercase snake_case name, e.g. "build_coverage_graph".
const char* PhaseName(Phase phase);

/// Solver progress counters surfaced per solve.
enum class Stat : uint8_t {
  kCandidatesConsidered = 0,  // candidates scanned for initial gains
  kHeapPops,                  // greedy heap extractions (incl. lazy rescans)
  kKeyUpdates,                // eager neighbor-of-neighbor key updates
  kGainRecomputes,            // lazy-heap gain recomputations
  kDistanceEvaluations,       // coverage-edge weight evaluations
  kSimplexPivots,             // simplex iterations across all LP solves
  kBnbNodes,                  // branch-and-bound nodes expanded
  kRoundingTrials,            // rounding draws completed
  kSwapsApplied,              // local-search swaps applied
  kSubsetsEvaluated,          // exhaustive subsets costed
  kGraphEdgesBuilt,           // coverage-graph edges assembled
};
inline constexpr int kNumStats = 11;

/// Stable lowercase snake_case name, e.g. "distance_evaluations".
const char* StatName(Stat stat);

/// Fixed-size per-solve accumulator: nanoseconds + entry count per phase,
/// one int64 per Stat. Not thread-safe — each trace belongs to the thread
/// it is installed on (BatchSummarizer workers each install their own).
class SolveTrace {
 public:
  void RecordPhase(Phase phase, int64_t nanos) {
    phase_nanos_[static_cast<size_t>(phase)] += nanos;
    phase_calls_[static_cast<size_t>(phase)] += 1;
  }
  void AddStat(Stat stat, int64_t delta) {
    stats_[static_cast<size_t>(stat)] += delta;
  }

  /// Span bookkeeping (used by TraceSpan; exposed so tests can assert the
  /// balance invariant).
  void EnterSpan() {
    ++open_spans_;
    if (open_spans_ > max_depth_) max_depth_ = open_spans_;
  }
  void ExitSpan() { --open_spans_; }

  int64_t phase_nanos(Phase phase) const {
    return phase_nanos_[static_cast<size_t>(phase)];
  }
  int64_t phase_calls(Phase phase) const {
    return phase_calls_[static_cast<size_t>(phase)];
  }
  int64_t stat(Stat stat) const {
    return stats_[static_cast<size_t>(stat)];
  }
  /// 0 whenever no span is live — i.e. always, outside span scopes, even
  /// after a solver bailed out mid-phase on a deadline.
  int open_spans() const { return open_spans_; }
  /// Deepest nesting observed.
  int max_depth() const { return max_depth_; }

  /// True when nothing was recorded.
  bool empty() const;

  void Reset();

  /// Accumulates every phase and stat of `other` into this trace.
  void MergeFrom(const SolveTrace& other);

 private:
  int64_t phase_nanos_[kNumPhases] = {};
  int64_t phase_calls_[kNumPhases] = {};
  int64_t stats_[kNumStats] = {};
  int open_spans_ = 0;
  int max_depth_ = 0;
};

#if OSRS_OBS_ENABLED

/// Thread-local installation point for the active SolveTrace.
class Tracer {
 public:
  /// The trace installed on this thread, or null (collection off).
  static SolveTrace* current() { return current_; }

  /// RAII installer: spans/stats on this thread record into `trace` until
  /// the scope dies; the previous trace (usually none) is restored after.
  /// Pass Tracer::current() to keep whatever is installed.
  class Scope {
   public:
    explicit Scope(SolveTrace* trace) : previous_(current_) {
      current_ = trace;
    }
    ~Scope() { current_ = previous_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    SolveTrace* const previous_;
  };

 private:
  // Defined in-class with constinit so the compiler proves there is no
  // dynamic TLS initialization and accesses the slot directly instead of
  // through the thread_local init wrapper. The wrapper costs an extra call
  // on every instrumented hot-path stat, and GCC's UBSan misreports it as
  // a "load of null pointer" (false positive), failing the CI sanitizer
  // stage.
  static constinit inline thread_local SolveTrace* current_ = nullptr;
};

/// RAII phase timer: records elapsed nanoseconds under `phase` into the
/// thread's installed trace (no-op when none is installed).
class TraceSpan {
 public:
  explicit TraceSpan(Phase phase)
      : trace_(Tracer::current()), phase_(phase) {
    if (trace_ != nullptr) {
      trace_->EnterSpan();
      watch_.Reset();
    }
  }
  ~TraceSpan() {
    if (trace_ != nullptr) {
      trace_->RecordPhase(phase_, watch_.ElapsedNanos());
      trace_->ExitSpan();
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  SolveTrace* const trace_;
  const Phase phase_;
  Stopwatch watch_;
};

/// Adds `delta` to `stat` on the installed trace, if any. Call once per
/// phase with a locally accumulated total, not from inner loops.
inline void TraceStat(Stat stat, int64_t delta) {
  SolveTrace* trace = Tracer::current();
  if (trace != nullptr) trace->AddStat(stat, delta);
}

#else  // !OSRS_OBS_ENABLED — empty shells, call sites compile unchanged.

class Tracer {
 public:
  static constexpr SolveTrace* current() { return nullptr; }
  class Scope {
   public:
    explicit Scope(SolveTrace* /*trace*/) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
  };
};

class TraceSpan {
 public:
  explicit TraceSpan(Phase /*phase*/) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

inline void TraceStat(Stat /*stat*/, int64_t /*delta*/) {}

#endif  // OSRS_OBS_ENABLED

}  // namespace osrs::obs

#endif  // OSRS_OBS_TRACE_H_
