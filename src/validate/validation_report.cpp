#include "validate/validation_report.h"

#include <utility>

#include "common/strings.h"

namespace osrs {

const char* FindingSeverityToString(FindingSeverity severity) {
  switch (severity) {
    case FindingSeverity::kWarning:
      return "warning";
    case FindingSeverity::kError:
      return "error";
  }
  return "unknown";
}

std::string ValidationFinding::ToString() const {
  std::string out = FindingSeverityToString(severity);
  out += ' ';
  out += code;
  if (!location.empty()) {
    out += " [";
    out += location;
    out += ']';
  }
  out += ": ";
  out += message;
  return out;
}

void ValidationReport::Add(ValidationFinding finding) {
  if (finding.severity == FindingSeverity::kError) {
    ++error_count_;
  } else {
    ++warning_count_;
  }
  if (findings_.size() >= max_findings_) {
    ++dropped_;
    return;
  }
  findings_.push_back(std::move(finding));
}

void ValidationReport::AddError(std::string code, std::string location,
                                std::string message) {
  Add({FindingSeverity::kError, std::move(code), std::move(location),
       std::move(message)});
}

void ValidationReport::AddWarning(std::string code, std::string location,
                                  std::string message) {
  Add({FindingSeverity::kWarning, std::move(code), std::move(location),
       std::move(message)});
}

void ValidationReport::Merge(const ValidationReport& other) {
  size_t stored_errors = 0;
  for (const ValidationFinding& finding : other.findings_) {
    if (finding.severity == FindingSeverity::kError) ++stored_errors;
    Add(finding);
  }
  // Findings the source report dropped at its cap were still tallied there;
  // carry those tallies over so the merged counts reflect everything seen.
  dropped_ += other.dropped_;
  error_count_ += other.error_count_ - stored_errors;
  warning_count_ +=
      other.warning_count_ - (other.findings_.size() - stored_errors);
}

std::string ValidationReport::ToString() const {
  if (empty()) return "clean";
  std::string out;
  for (const ValidationFinding& finding : findings_) {
    out += finding.ToString();
    out += '\n';
  }
  if (dropped_ > 0) {
    out += StrFormat("(%zu further finding(s) dropped at the cap)\n", dropped_);
  }
  out += StrFormat("%zu error(s), %zu warning(s)", error_count_,
                   warning_count_);
  return out;
}

std::string ValidationReport::ToJson() const {
  std::string out = StrFormat("{\"errors\":%zu,\"warnings\":%zu,\"dropped\":%zu,\"findings\":[",
                              error_count_, warning_count_, dropped_);
  for (size_t i = 0; i < findings_.size(); ++i) {
    const ValidationFinding& finding = findings_[i];
    if (i > 0) out += ',';
    out += StrFormat(
        "{\"severity\":\"%s\",\"code\":\"%s\",\"location\":\"%s\","
        "\"message\":\"%s\"}",
        FindingSeverityToString(finding.severity),
        JsonEscape(finding.code).c_str(), JsonEscape(finding.location).c_str(),
        JsonEscape(finding.message).c_str());
  }
  out += "]}";
  return out;
}

}  // namespace osrs
