#ifndef OSRS_VALIDATE_VALIDATION_REPORT_H_
#define OSRS_VALIDATE_VALIDATION_REPORT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace osrs {

/// How bad a validation finding is. Errors make the validated input
/// unusable (solving on it would crash, loop, or produce meaningless
/// costs); warnings flag suspicious-but-servable data.
enum class FindingSeverity {
  kWarning,
  kError,
};

/// Stable lowercase name ("warning" / "error") for rendering.
const char* FindingSeverityToString(FindingSeverity severity);

/// One structured diagnostic produced by the static verification layer.
///
/// `code` is a stable machine-readable identifier of the shape
/// OSRS-<AREA>-<NNN> (e.g. "OSRS-ONT-001" = ontology cycle). Codes are
/// documented in README.md and never reused for a different meaning, so
/// tooling may match on them.
struct ValidationFinding {
  FindingSeverity severity = FindingSeverity::kError;
  std::string code;      // e.g. "OSRS-ONT-001"
  std::string location;  // e.g. "edge 3->7", "item 'd12' review 4 sentence 2"
  std::string message;   // human-readable explanation

  /// Renders "error OSRS-ONT-001 [edge 3->7]: message".
  std::string ToString() const;
};

/// An ordered collection of findings with severity tallies.
///
/// Reports stay bounded on pathological inputs: at most `max_findings`
/// findings are stored; additional ones still count toward error_count() /
/// warning_count() but are dropped (see dropped()). ok() therefore reflects
/// every error seen, stored or not.
class ValidationReport {
 public:
  static constexpr size_t kDefaultMaxFindings = 1000;

  explicit ValidationReport(size_t max_findings = kDefaultMaxFindings)
      : max_findings_(max_findings) {}

  void Add(ValidationFinding finding);
  void AddError(std::string code, std::string location, std::string message);
  void AddWarning(std::string code, std::string location, std::string message);

  /// Appends every finding of `other` (subject to this report's cap).
  void Merge(const ValidationReport& other);

  const std::vector<ValidationFinding>& findings() const { return findings_; }
  size_t error_count() const { return error_count_; }
  size_t warning_count() const { return warning_count_; }
  /// Findings counted but not stored because the cap was reached.
  size_t dropped() const { return dropped_; }

  /// True when no error-severity finding was recorded (warnings allowed).
  bool ok() const { return error_count_ == 0; }
  /// True when nothing at all was recorded.
  bool empty() const { return error_count_ == 0 && warning_count_ == 0; }

  /// One line per finding plus a trailing "N error(s), M warning(s)"
  /// summary; "clean" for an empty report.
  std::string ToString() const;

  /// {"errors":N,"warnings":N,"dropped":N,"findings":[{"severity":...,
  /// "code":...,"location":...,"message":...},...]}
  std::string ToJson() const;

 private:
  size_t max_findings_;
  size_t error_count_ = 0;
  size_t warning_count_ = 0;
  size_t dropped_ = 0;
  std::vector<ValidationFinding> findings_;
};

}  // namespace osrs

#endif  // OSRS_VALIDATE_VALIDATION_REPORT_H_
