#ifndef OSRS_VALIDATE_MODEL_VALIDATOR_H_
#define OSRS_VALIDATE_MODEL_VALIDATOR_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "core/model.h"
#include "ontology/ontology.h"
#include "validate/validation_report.h"

namespace osrs {

/// Raw ontology structure as written in an input file, before any of the
/// invariants Ontology::Finalize() enforces are applied. The validator
/// works on this form so it can *diagnose* cycles, duplicate edges, and
/// orphans that the Ontology class itself refuses to represent.
struct OntologySpec {
  struct Edge {
    ConceptId parent = kInvalidConcept;
    ConceptId child = kInvalidConcept;
  };
  std::vector<std::string> names;
  std::vector<Edge> edges;
};

/// Snapshot of a (finalized or unfinalized) Ontology as an OntologySpec.
OntologySpec SpecOf(const Ontology& ontology);

/// Lenient parser for the `# osrs-ontology v1` serialization: malformed
/// lines become OSRS-FMT findings and are skipped instead of failing the
/// parse, so structural validation can still run on the rest.
OntologySpec ParseOntologySpec(std::string_view text,
                               ValidationReport* report);

/// Tuning knobs of ModelValidator.
struct ModelValidatorOptions {
  /// Depths beyond this trigger the OSRS-ONT-006 warning: real-world
  /// hierarchies (SNOMED and consumer-product taxonomies alike) stay far
  /// shallower, so a deeper graph almost always means edge direction was
  /// inverted somewhere upstream.
  int max_depth = 64;
  /// Sentiment scale bound of the §2 model; |s| beyond it is an error.
  double max_abs_sentiment = 1.0;
  /// Cap on stored findings per report (tallies keep counting past it).
  size_t max_findings = ValidationReport::kDefaultMaxFindings;
};

/// Static checker for the structural invariants the OSRS pipeline assumes
/// but (outside Ontology::Finalize) never verifies: the ontology is a
/// rooted DAG, every pair references a real concept with a finite
/// in-range sentiment, group indices are a partition, and solver inputs
/// are in range before the NP-hard machinery runs.
///
/// All checks are read-only, allocation-light, and never abort; they
/// append structured findings (stable OSRS-XXX-NNN codes, see README.md)
/// to a caller-owned ValidationReport. Thread-safe: a const
/// ModelValidator may be shared across threads as long as each thread
/// uses its own report.
class ModelValidator {
 public:
  explicit ModelValidator(ModelValidatorOptions options = {})
      : options_(options) {}

  const ModelValidatorOptions& options() const { return options_; }

  /// Fresh report wired with this validator's finding cap.
  ValidationReport MakeReport() const {
    return ValidationReport(options_.max_findings);
  }

  // -- Ontology structure (Definition 1/2 preconditions) --------------------

  /// Checks `spec` for: empty ontology (OSRS-ONT-007), out-of-range edge
  /// endpoints (OSRS-ONT-008), self edges (OSRS-ONT-004), duplicate edges
  /// (OSRS-ONT-003), cycles via iterative DFS (OSRS-ONT-001), missing or
  /// multiple roots (OSRS-ONT-009 / OSRS-ONT-005), concepts unreachable
  /// from any root (OSRS-ONT-002), depth beyond options().max_depth
  /// (OSRS-ONT-006), and empty concept names (OSRS-ONT-010).
  void CheckOntologySpec(const OntologySpec& spec,
                         ValidationReport* report) const;

  /// CheckOntologySpec over a snapshot of `ontology` (works before or
  /// after Finalize; a finalized ontology can only yield warnings).
  void CheckOntology(const Ontology& ontology, ValidationReport* report) const;

  // -- Corpus integrity -----------------------------------------------------

  /// Checks every pair of `item` against an ontology of `num_concepts`
  /// concepts: dangling concept references (OSRS-CRP-001), non-finite
  /// sentiments (OSRS-CRP-002), out-of-scale sentiments (OSRS-CRP-003),
  /// out-of-scale ratings (OSRS-CRP-004, warning), empty reviews
  /// (OSRS-CRP-005, warning), items without reviews (OSRS-CRP-006,
  /// warning), and sentences with neither text nor pairs (OSRS-CRP-008,
  /// warning).
  void CheckItem(const Item& item, size_t num_concepts,
                 ValidationReport* report) const;

  /// CheckItem over every item, plus duplicate item ids (OSRS-CRP-007,
  /// warning).
  void CheckItems(const std::vector<Item>& items, size_t num_concepts,
                  ValidationReport* report) const;

  /// Sentence/review grouping integrity (the ItemGraph::groups contract):
  /// member indices must lie in [0, num_pairs) (OSRS-CRP-009) and no pair
  /// may belong to two groups (OSRS-CRP-010).
  void CheckGroups(const std::vector<std::vector<int>>& groups,
                   size_t num_pairs, ValidationReport* report) const;

  // -- Solver preconditions -------------------------------------------------

  /// k < 0 (OSRS-SLV-001), k beyond the candidate set (OSRS-SLV-002,
  /// warning: the facade truncates), epsilon non-finite or <= 0
  /// (OSRS-SLV-003), epsilon beyond the full sentiment spread so it never
  /// filters (OSRS-SLV-004, warning).
  void CheckSolverConfig(int k, double epsilon, size_t num_candidates,
                         ValidationReport* report) const;

  // -- Whole-file validation (what osrs_lint runs) --------------------------

  /// Validates text in the `# osrs-corpus v1` format leniently: format
  /// problems become OSRS-FMT findings, then the embedded ontology and
  /// every item are checked structurally. Never fails to return a report.
  ValidationReport ValidateCorpusText(std::string_view text) const;

  /// Validates text in the `# osrs-ontology v1` format leniently.
  ValidationReport ValidateOntologyText(std::string_view text) const;

 private:
  /// CheckItem with the item's position for diagnostics on unnamed items.
  void CheckItem(const Item& item, size_t num_concepts, size_t item_index,
                 ValidationReport* report) const;

  ModelValidatorOptions options_;
};

}  // namespace osrs

#endif  // OSRS_VALIDATE_MODEL_VALIDATOR_H_
