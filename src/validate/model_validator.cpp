#include "validate/model_validator.h"

#include <cmath>
#include <cstdint>
#include <unordered_set>
#include <utility>

#include "common/strings.h"

namespace osrs {
namespace {

/// Safe name lookup for diagnostics: specs parsed from hostile files may
/// reference ids that have no name row.
std::string NameOrId(const OntologySpec& spec, ConceptId id) {
  if (id >= 0 && static_cast<size_t>(id) < spec.names.size() &&
      !spec.names[static_cast<size_t>(id)].empty()) {
    return spec.names[static_cast<size_t>(id)];
  }
  return StrFormat("#%d", id);
}

std::string ItemLocation(const Item& item, size_t item_index) {
  if (!item.id.empty()) return StrFormat("item '%s'", item.id.c_str());
  return StrFormat("item %zu", item_index);
}

}  // namespace

OntologySpec SpecOf(const Ontology& ontology) {
  OntologySpec spec;
  const size_t n = ontology.num_concepts();
  spec.names.reserve(n);
  for (ConceptId id = 0; id < static_cast<ConceptId>(n); ++id) {
    spec.names.push_back(ontology.name(id));
  }
  for (ConceptId id = 0; id < static_cast<ConceptId>(n); ++id) {
    for (ConceptId child : ontology.children(id)) {
      spec.edges.push_back({id, child});
    }
  }
  return spec;
}

OntologySpec ParseOntologySpec(std::string_view text,
                               ValidationReport* report) {
  OntologySpec spec;
  size_t line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    std::string_view line = Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    const std::string location = StrFormat("line %zu", line_number);
    std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 3) {
      report->AddError("OSRS-FMT-001", location,
                       StrFormat("malformed ontology line: expected 3 "
                                 "tab-separated fields, got %zu",
                                 fields.size()));
      continue;
    }
    const std::string& kind = fields[0];
    if (kind == "C") {
      if (std::to_string(spec.names.size()) != fields[1]) {
        report->AddError(
            "OSRS-FMT-004", location,
            StrFormat("non-sequential concept id '%s' (expected %zu)",
                      fields[1].c_str(), spec.names.size()));
      }
      spec.names.push_back(fields[2]);
    } else if (kind == "E") {
      int64_t parent = 0, child = 0;
      if (!ParseInt64(fields[1], &parent) || !ParseInt64(fields[2], &child)) {
        report->AddError("OSRS-FMT-004", location,
                         StrFormat("malformed edge endpoints '%s' -> '%s'",
                                   fields[1].c_str(), fields[2].c_str()));
        continue;
      }
      spec.edges.push_back({static_cast<ConceptId>(parent),
                            static_cast<ConceptId>(child)});
    } else if (kind == "S") {
      int64_t id = 0;
      if (!ParseInt64(fields[1], &id)) {
        report->AddError(
            "OSRS-FMT-004", location,
            StrFormat("malformed synonym concept id '%s'", fields[1].c_str()));
      } else if (id < 0 || id >= static_cast<int64_t>(spec.names.size())) {
        report->AddError(
            "OSRS-ONT-011", location,
            StrFormat("synonym '%s' references unknown concept %lld",
                      fields[2].c_str(), static_cast<long long>(id)));
      }
    } else {
      report->AddError("OSRS-FMT-002", location,
                       StrFormat("unknown record kind '%s'", kind.c_str()));
    }
  }
  return spec;
}

void ModelValidator::CheckOntologySpec(const OntologySpec& spec,
                                       ValidationReport* report) const {
  const size_t n = spec.names.size();
  if (n == 0) {
    report->AddError("OSRS-ONT-007", "", "ontology has no concepts");
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (spec.names[i].empty()) {
      report->AddWarning("OSRS-ONT-010", StrFormat("concept %zu", i),
                         "concept has an empty name");
    }
  }

  // Adjacency over valid, deduplicated, non-self edges; invalid edges are
  // reported and excluded so the graph walks below stay well-defined.
  std::vector<std::vector<ConceptId>> children(n);
  std::vector<size_t> num_parents(n, 0);
  std::unordered_set<int64_t> seen_edges;
  seen_edges.reserve(spec.edges.size());
  for (const OntologySpec::Edge& edge : spec.edges) {
    const std::string location =
        StrFormat("edge %d->%d", edge.parent, edge.child);
    if (edge.parent < 0 || static_cast<size_t>(edge.parent) >= n ||
        edge.child < 0 || static_cast<size_t>(edge.child) >= n) {
      report->AddError(
          "OSRS-ONT-008", location,
          StrFormat("edge endpoint out of range [0, %zu)", n));
      continue;
    }
    if (edge.parent == edge.child) {
      report->AddError("OSRS-ONT-004", location,
                       StrFormat("self edge on concept '%s'",
                                 NameOrId(spec, edge.parent).c_str()));
      continue;
    }
    int64_t key = static_cast<int64_t>(edge.parent) * static_cast<int64_t>(n) +
                  edge.child;
    if (!seen_edges.insert(key).second) {
      report->AddWarning(
          "OSRS-ONT-003", location,
          StrFormat("duplicate edge '%s' -> '%s'",
                    NameOrId(spec, edge.parent).c_str(),
                    NameOrId(spec, edge.child).c_str()));
      continue;
    }
    children[static_cast<size_t>(edge.parent)].push_back(edge.child);
    ++num_parents[static_cast<size_t>(edge.child)];
  }

  // Roots: exactly one concept without parents.
  std::vector<ConceptId> roots;
  for (size_t c = 0; c < n; ++c) {
    if (num_parents[c] == 0) roots.push_back(static_cast<ConceptId>(c));
  }
  if (roots.empty()) {
    report->AddError("OSRS-ONT-009", "",
                     "no root concept: every concept has a parent, so the "
                     "graph cycles through all of them");
  }
  for (size_t r = 1; r < roots.size(); ++r) {
    report->AddError(
        "OSRS-ONT-005", StrFormat("concept %d", roots[r]),
        StrFormat("multiple roots: '%s' has no parent in addition to '%s'",
                  NameOrId(spec, roots[r]).c_str(),
                  NameOrId(spec, roots[0]).c_str()));
  }

  // Acyclicity via iterative DFS with white/gray/black coloring; every
  // gray->gray edge closes a directed cycle. Explicit stack: real
  // ontologies (SNOMED-scale) overflow the call stack on deep chains.
  enum : uint8_t { kWhite = 0, kGray = 1, kBlack = 2 };
  std::vector<uint8_t> color(n, kWhite);
  struct Frame {
    ConceptId node;
    size_t next_child;
  };
  std::vector<Frame> stack;
  for (size_t start = 0; start < n; ++start) {
    if (color[start] != kWhite) continue;
    color[start] = kGray;
    stack.push_back({static_cast<ConceptId>(start), 0});
    while (!stack.empty()) {
      Frame& top = stack.back();
      const auto& kids = children[static_cast<size_t>(top.node)];
      if (top.next_child < kids.size()) {
        ConceptId child = kids[top.next_child++];
        if (color[static_cast<size_t>(child)] == kWhite) {
          color[static_cast<size_t>(child)] = kGray;
          stack.push_back({child, 0});
        } else if (color[static_cast<size_t>(child)] == kGray) {
          report->AddError(
              "OSRS-ONT-001", StrFormat("edge %d->%d", top.node, child),
              StrFormat("cycle detected: edge '%s' -> '%s' closes a "
                        "directed cycle",
                        NameOrId(spec, top.node).c_str(),
                        NameOrId(spec, child).c_str()));
        }
      } else {
        color[static_cast<size_t>(top.node)] = kBlack;
        stack.pop_back();
      }
    }
  }

  // Reachability and depth: BFS from every root at once. Shortest-path
  // coverage distances (Definition 2) are undefined for concepts the root
  // cannot reach, so each one is an error, not a warning.
  std::vector<int> depth(n, -1);
  std::vector<ConceptId> frontier;
  for (ConceptId root : roots) {
    depth[static_cast<size_t>(root)] = 0;
    frontier.push_back(root);
  }
  int max_depth = 0;
  ConceptId deepest = roots.empty() ? kInvalidConcept : roots[0];
  for (size_t head = 0; head < frontier.size(); ++head) {
    ConceptId c = frontier[head];
    for (ConceptId child : children[static_cast<size_t>(c)]) {
      if (depth[static_cast<size_t>(child)] != -1) continue;
      depth[static_cast<size_t>(child)] = depth[static_cast<size_t>(c)] + 1;
      if (depth[static_cast<size_t>(child)] > max_depth) {
        max_depth = depth[static_cast<size_t>(child)];
        deepest = child;
      }
      frontier.push_back(child);
    }
  }
  for (size_t c = 0; c < n; ++c) {
    if (depth[c] == -1) {
      report->AddError(
          "OSRS-ONT-002", StrFormat("concept %zu", c),
          StrFormat("concept '%s' is unreachable from the root",
                    NameOrId(spec, static_cast<ConceptId>(c)).c_str()));
    }
  }
  if (max_depth > options_.max_depth) {
    report->AddWarning(
        "OSRS-ONT-006", StrFormat("concept %d", deepest),
        StrFormat("hierarchy depth %d exceeds the bound %d (deepest "
                  "concept: '%s'); check for inverted edges",
                  max_depth, options_.max_depth,
                  NameOrId(spec, deepest).c_str()));
  }
}

void ModelValidator::CheckOntology(const Ontology& ontology,
                                   ValidationReport* report) const {
  CheckOntologySpec(SpecOf(ontology), report);
}

void ModelValidator::CheckItem(const Item& item, size_t num_concepts,
                               ValidationReport* report) const {
  CheckItem(item, num_concepts, /*item_index=*/0, report);
}

void ModelValidator::CheckItem(const Item& item, size_t num_concepts,
                               size_t item_index,
                               ValidationReport* report) const {
  const std::string item_location = ItemLocation(item, item_index);
  if (item.reviews.empty()) {
    report->AddWarning("OSRS-CRP-006", item_location, "item has no reviews");
    return;
  }
  for (size_t r = 0; r < item.reviews.size(); ++r) {
    const Review& review = item.reviews[r];
    const std::string review_location =
        StrFormat("%s review %zu", item_location.c_str(), r);
    if (!std::isfinite(review.rating) ||
        std::abs(review.rating) > options_.max_abs_sentiment) {
      report->AddWarning(
          "OSRS-CRP-004", review_location,
          StrFormat("rating %g outside the normalized scale [-%g, %g]",
                    review.rating, options_.max_abs_sentiment,
                    options_.max_abs_sentiment));
    }
    if (review.sentences.empty()) {
      report->AddWarning("OSRS-CRP-005", review_location,
                         "review has no sentences");
      continue;
    }
    for (size_t s = 0; s < review.sentences.size(); ++s) {
      const Sentence& sentence = review.sentences[s];
      const std::string sentence_location =
          StrFormat("%s sentence %zu", review_location.c_str(), s);
      if (sentence.text.empty() && sentence.pairs.empty()) {
        report->AddWarning("OSRS-CRP-008", sentence_location,
                           "sentence has neither text nor pairs");
      }
      for (size_t p = 0; p < sentence.pairs.size(); ++p) {
        const ConceptSentimentPair& pair = sentence.pairs[p];
        const std::string pair_location =
            StrFormat("%s pair %zu", sentence_location.c_str(), p);
        if (pair.concept_id < 0 ||
            static_cast<size_t>(pair.concept_id) >= num_concepts) {
          report->AddError(
              "OSRS-CRP-001", pair_location,
              StrFormat("pair references concept %d outside [0, %zu)",
                        pair.concept_id, num_concepts));
        }
        if (!std::isfinite(pair.sentiment)) {
          report->AddError("OSRS-CRP-002", pair_location,
                           "sentiment is not finite");
        } else if (std::abs(pair.sentiment) > options_.max_abs_sentiment) {
          report->AddError(
              "OSRS-CRP-003", pair_location,
              StrFormat("sentiment %g outside [-%g, %g]", pair.sentiment,
                        options_.max_abs_sentiment,
                        options_.max_abs_sentiment));
        }
      }
    }
  }
}

void ModelValidator::CheckItems(const std::vector<Item>& items,
                                size_t num_concepts,
                                ValidationReport* report) const {
  std::unordered_set<std::string> seen_ids;
  seen_ids.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    if (!items[i].id.empty() && !seen_ids.insert(items[i].id).second) {
      report->AddWarning(
          "OSRS-CRP-007", StrFormat("item %zu", i),
          StrFormat("duplicate item id '%s'", items[i].id.c_str()));
    }
    CheckItem(items[i], num_concepts, i, report);
  }
}

void ModelValidator::CheckGroups(const std::vector<std::vector<int>>& groups,
                                 size_t num_pairs,
                                 ValidationReport* report) const {
  std::vector<int> owner(num_pairs, -1);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (int member : groups[g]) {
      const std::string location = StrFormat("group %zu", g);
      if (member < 0 || static_cast<size_t>(member) >= num_pairs) {
        report->AddError(
            "OSRS-CRP-009", location,
            StrFormat("group member index %d outside [0, %zu)", member,
                      num_pairs));
        continue;
      }
      int& current = owner[static_cast<size_t>(member)];
      if (current != -1) {
        report->AddError(
            "OSRS-CRP-010", location,
            StrFormat("pair %d belongs to both group %d and group %zu",
                      member, current, g));
      } else {
        current = static_cast<int>(g);
      }
    }
  }
}

void ModelValidator::CheckSolverConfig(int k, double epsilon,
                                       size_t num_candidates,
                                       ValidationReport* report) const {
  if (k < 0) {
    report->AddError("OSRS-SLV-001", "",
                     StrFormat("summary size k=%d is negative", k));
  } else if (static_cast<size_t>(k) > num_candidates) {
    report->AddWarning(
        "OSRS-SLV-002", "",
        StrFormat("k=%d exceeds the %zu candidates; the selection will be "
                  "truncated",
                  k, num_candidates));
  }
  if (!std::isfinite(epsilon) || epsilon <= 0.0) {
    report->AddError(
        "OSRS-SLV-003", "",
        StrFormat("epsilon %g must be a finite positive value", epsilon));
  } else if (epsilon > 2.0 * options_.max_abs_sentiment) {
    report->AddWarning(
        "OSRS-SLV-004", "",
        StrFormat("epsilon %g exceeds the full sentiment spread %g and "
                  "never filters",
                  epsilon, 2.0 * options_.max_abs_sentiment));
  }
}

ValidationReport ModelValidator::ValidateCorpusText(
    std::string_view text) const {
  ValidationReport report = MakeReport();
  bool saw_header = false;
  bool have_ontology = false;
  OntologySpec spec;
  std::vector<Item> items;
  Item* item = nullptr;
  Review* review = nullptr;
  size_t line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    if (raw_line.empty()) continue;
    if (raw_line[0] == '#') {
      if (StartsWith(raw_line, "# osrs-corpus")) saw_header = true;
      continue;
    }
    const std::string location = StrFormat("line %zu", line_number);
    size_t tab = raw_line.find('\t');
    if (tab == std::string::npos) {
      report.AddError("OSRS-FMT-001", location,
                      StrFormat("record without payload: '%s'",
                                raw_line.c_str()));
      continue;
    }
    std::string kind = raw_line.substr(0, tab);
    std::string payload = raw_line.substr(tab + 1);
    if (kind == "D") {
      // Domain label: free-form, nothing to check.
    } else if (kind == "O") {
      if (have_ontology) {
        report.AddWarning("OSRS-FMT-006", location,
                          "multiple ontology records; the last one wins");
      }
      for (char& c : payload) {
        if (c == '|') c = '\n';
      }
      spec = ParseOntologySpec(payload, &report);
      have_ontology = true;
    } else if (kind == "I") {
      items.emplace_back();
      item = &items.back();
      item->id = payload;
      review = nullptr;
    } else if (kind == "R") {
      if (item == nullptr) {
        report.AddError("OSRS-FMT-003", location, "R record before any item");
        continue;
      }
      double rating = 0.0;
      if (!ParseDouble(payload, &rating)) {
        report.AddError("OSRS-FMT-004", location,
                        StrFormat("malformed rating '%s'", payload.c_str()));
        continue;
      }
      item->reviews.emplace_back();
      review = &item->reviews.back();
      review->rating = rating;
    } else if (kind == "S") {
      if (review == nullptr) {
        report.AddError("OSRS-FMT-003", location,
                        "S record before any review");
        continue;
      }
      std::vector<std::string> fields = Split(payload, '\t');
      Sentence sentence;
      sentence.text = fields[0];
      for (size_t f = 1; f < fields.size(); ++f) {
        size_t colon = fields[f].find(':');
        int64_t concept_id = 0;
        double sentiment = 0.0;
        if (colon == std::string::npos ||
            !ParseInt64(fields[f].substr(0, colon), &concept_id) ||
            !ParseDouble(fields[f].substr(colon + 1), &sentiment)) {
          report.AddError(
              "OSRS-FMT-004", location,
              StrFormat("malformed pair field '%s'", fields[f].c_str()));
          continue;
        }
        sentence.pairs.push_back(
            {static_cast<ConceptId>(concept_id), sentiment});
      }
      review->sentences.push_back(std::move(sentence));
    } else {
      report.AddError("OSRS-FMT-002", location,
                      StrFormat("unknown record kind '%s'", kind.c_str()));
    }
  }
  if (!saw_header) {
    report.AddWarning("OSRS-FMT-007", "",
                      "missing '# osrs-corpus v1' header line");
  }
  if (!have_ontology) {
    report.AddError("OSRS-FMT-005", "", "corpus has no ontology record");
  } else {
    CheckOntologySpec(spec, &report);
  }
  CheckItems(items, spec.names.size(), &report);
  return report;
}

ValidationReport ModelValidator::ValidateOntologyText(
    std::string_view text) const {
  ValidationReport report = MakeReport();
  bool saw_header = false;
  for (const std::string& raw_line : Split(text, '\n')) {
    if (StartsWith(raw_line, "# osrs-ontology")) {
      saw_header = true;
      break;
    }
  }
  if (!saw_header) {
    report.AddWarning("OSRS-FMT-007", "",
                      "missing '# osrs-ontology v1' header line");
  }
  OntologySpec spec = ParseOntologySpec(text, &report);
  CheckOntologySpec(spec, &report);
  return report;
}

}  // namespace osrs
